package server

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"

	"groupform/internal/core"
	"groupform/internal/dataset"
	"groupform/internal/semantics"
	"groupform/internal/solver"
)

// oracleBody renders the response /form must produce for cfg: a
// fresh single-threaded Engine.Form marshaled through the same
// serializer the server uses.
func oracleBody(t testing.TB, ds *dataset.Dataset, name string, cfg core.Config) []byte {
	t.Helper()
	eng, err := solver.NewEngine(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Form(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	body, err := marshalBody(toFormResponse(name, res, false))
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	rec := doJSON(t, s, "GET", "/healthz", nil)
	wantStatus(t, rec, http.StatusOK, "")
	h := decodeAs[HealthResponse](t, rec)
	if h.Status != "ok" || len(h.Datasets) != 1 || h.Datasets[0] != "main" {
		t.Fatalf("healthz = %+v", h)
	}
	if h.Inflight != 0 {
		t.Fatalf("idle inflight = %d", h.Inflight)
	}
}

func TestDatasetsListing(t *testing.T) {
	s, ds := newTestServer(t, Config{})
	rec := doJSON(t, s, "GET", "/datasets", nil)
	wantStatus(t, rec, http.StatusOK, "")
	infos := decodeAs[map[string]DatasetInfo](t, rec)
	want := DatasetInfo{Users: ds.NumUsers(), Items: ds.NumItems(), Ratings: ds.NumRatings()}
	if infos["main"] != want {
		t.Fatalf("infos[main] = %+v, want %+v", infos["main"], want)
	}
}

// TestFormMatchesOracle pins the serving path byte-for-byte to the
// library result across the semantics/aggregation grid.
func TestFormMatchesOracle(t *testing.T) {
	s, ds := newTestServer(t, Config{})
	for _, sem := range []string{"lm", "av"} {
		for _, agg := range []string{"max", "min", "sum"} {
			req := FormRequest{Dataset: "main", FormParams: FormParams{K: 4, L: 6, Semantics: sem, Aggregation: agg}}
			rec := doJSON(t, s, "POST", "/form", req)
			wantStatus(t, rec, http.StatusOK, "")
			cfg, err := req.config(0)
			if err != nil {
				t.Fatal(err)
			}
			if want := oracleBody(t, ds, "main", cfg); !bytes.Equal(rec.Body.Bytes(), want) {
				t.Fatalf("%s-%s: body diverges from oracle:\n got %s\nwant %s", sem, agg, rec.Body.Bytes(), want)
			}
		}
	}
}

// TestFormDefaultDataset: the empty dataset name resolves iff exactly
// one dataset is loaded.
func TestFormDefaultDataset(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	req := FormRequest{FormParams: FormParams{K: 3, L: 4, Semantics: "lm", Aggregation: "min"}}
	rec := doJSON(t, s, "POST", "/form", req)
	wantStatus(t, rec, http.StatusOK, "")
	if fr := decodeAs[FormResponse](t, rec); fr.Dataset != "main" {
		t.Fatalf("resolved dataset = %q, want main", fr.Dataset)
	}

	// A second dataset makes the empty name ambiguous.
	if err := s.AddDataset("other", testDS(t, 7)); err != nil {
		t.Fatal(err)
	}
	rec = doJSON(t, s, "POST", "/form", req)
	wantStatus(t, rec, http.StatusNotFound, CodeNotFound)
}

func TestFormErrorMapping(t *testing.T) {
	s, ds := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"not json", []byte("{"), http.StatusBadRequest, CodeBadConfig},
		{"unknown field", []byte(`{"k":3,"l":4,"semantics":"lm","agg":"min","bogus":1}`), http.StatusBadRequest, CodeBadConfig},
		{"two documents", []byte(`{"k":3,"l":4,"semantics":"lm","agg":"min"}{}`), http.StatusBadRequest, CodeBadConfig},
		{"bad semantics", FormRequest{FormParams: FormParams{K: 3, L: 4, Semantics: "median", Aggregation: "min"}}, http.StatusBadRequest, CodeBadConfig},
		{"bad aggregation", FormRequest{FormParams: FormParams{K: 3, L: 4, Semantics: "lm", Aggregation: "p99"}}, http.StatusBadRequest, CodeBadConfig},
		{"k too large", FormRequest{FormParams: FormParams{K: ds.NumItems() + 1, L: 4, Semantics: "lm", Aggregation: "min"}}, http.StatusBadRequest, CodeBadConfig},
		{"zero l", FormRequest{FormParams: FormParams{K: 3, Semantics: "lm", Aggregation: "min"}}, http.StatusBadRequest, CodeBadConfig},
		{"unknown dataset", FormRequest{Dataset: "nope", FormParams: FormParams{K: 3, L: 4, Semantics: "lm", Aggregation: "min"}}, http.StatusNotFound, CodeNotFound},
		{"oversized body", append([]byte(`{"k":3,"l":4,"semantics":"lm","agg":"min","dataset":"`),
			append(bytes.Repeat([]byte("x"), maxSolveBodyBytes+1), []byte(`"}`)...)...),
			http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"negative timeout_ms", FormRequest{TimeoutMS: -5, FormParams: FormParams{K: 3, L: 4, Semantics: "lm", Aggregation: "min"}}, http.StatusBadRequest, CodeBadConfig},
		{"valid doc padded past the cap", append([]byte(`{"k":3,"l":4,"semantics":"lm","agg":"min"}`),
			bytes.Repeat([]byte(" "), maxSolveBodyBytes+1)...),
			http.StatusRequestEntityTooLarge, CodeTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doJSON(t, s, "POST", "/form", tc.body)
			wantStatus(t, rec, tc.status, tc.code)
		})
	}
	if n := s.LeasedScratches(); n != 0 {
		t.Fatalf("error paths leaked %d scratches", n)
	}
}

// TestSolveEndpoint runs a non-greedy registry algorithm over HTTP
// and checks the too-large classification of the exact DP.
func TestSolveEndpoint(t *testing.T) {
	s, ds := newTestServer(t, Config{})
	req := SolveRequest{Dataset: "main", Seed: 3, FormParams: FormParams{K: 3, L: 5, Semantics: "lm", Aggregation: "min"}}

	// Query parameter selects the algorithm.
	rec := doJSON(t, s, "POST", "/solve?algo=ls", req)
	wantStatus(t, rec, http.StatusOK, "")
	fr := decodeAs[FormResponse](t, rec)
	if !strings.Contains(fr.Algorithm, "LS") {
		t.Fatalf("algorithm = %q, want a local-search name", fr.Algorithm)
	}
	covered := 0
	for _, g := range fr.Groups {
		covered += len(g.Members)
	}
	if covered != ds.NumUsers() {
		t.Fatalf("solve covered %d of %d users", covered, ds.NumUsers())
	}

	// Default algorithm is the greedy.
	rec = doJSON(t, s, "POST", "/solve", req)
	wantStatus(t, rec, http.StatusOK, "")

	// The exact DP rejects a 200-user instance as too large -> 413.
	req.Algo = "exact"
	rec = doJSON(t, s, "POST", "/solve", req)
	wantStatus(t, rec, http.StatusRequestEntityTooLarge, CodeTooLarge)

	// Unknown algorithms are configuration errors.
	req.Algo = "simulated-annealing-pro"
	rec = doJSON(t, s, "POST", "/solve", req)
	wantStatus(t, rec, http.StatusBadRequest, CodeBadConfig)
}

// TestBatch: independent per-item outcomes on one scratch lease, and
// results identical to the one-at-a-time oracle.
func TestBatch(t *testing.T) {
	s, ds := newTestServer(t, Config{})
	req := BatchRequest{Dataset: "main", Requests: []FormParams{
		{K: 3, L: 5, Semantics: "lm", Aggregation: "min"},
		{K: 0, L: 5, Semantics: "lm", Aggregation: "min"}, // invalid K
		{K: 5, L: 3, Semantics: "av", Aggregation: "sum"},
	}}
	rec := doJSON(t, s, "POST", "/form/batch", req)
	wantStatus(t, rec, http.StatusOK, "")
	br := decodeAs[BatchResponse](t, rec)
	if len(br.Results) != 3 {
		t.Fatalf("got %d results", len(br.Results))
	}
	if br.Results[1].Error == nil || br.Results[1].Error.Code != CodeBadConfig {
		t.Fatalf("item 1 = %+v, want bad_config error", br.Results[1])
	}
	for _, i := range []int{0, 2} {
		item := br.Results[i]
		if item.Result == nil {
			t.Fatalf("item %d errored: %+v", i, item.Error)
		}
		cfg, err := req.Requests[i].config(0)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := solver.NewEngine(ds)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Form(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if item.Result.Objective != want.Objective || len(item.Result.Groups) != len(want.Groups) {
			t.Fatalf("item %d diverges from oracle", i)
		}
	}
	if n := s.LeasedScratches(); n != 0 {
		t.Fatalf("batch leaked %d scratches", n)
	}

	// An empty batch is a configuration error.
	rec = doJSON(t, s, "POST", "/form/batch", BatchRequest{Dataset: "main"})
	wantStatus(t, rec, http.StatusBadRequest, CodeBadConfig)
}

// TestBackpressure: with the semaphore full, every endpoint sheds
// with 503/overloaded instead of queueing.
func TestBackpressure(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxInflight: 2})
	if !s.acquire() || !s.acquire() {
		t.Fatal("could not fill the semaphore")
	}
	defer func() { s.release(); s.release() }()
	req := FormRequest{FormParams: FormParams{K: 3, L: 4, Semantics: "lm", Aggregation: "min"}}
	for _, path := range []string{"/form", "/form/batch", "/solve"} {
		rec := doJSON(t, s, "POST", path, req)
		wantStatus(t, rec, http.StatusServiceUnavailable, CodeOverloaded)
	}
	rec := doJSON(t, s, "POST", "/datasets/x", []byte("user,item,rating\n1,1,5\n"))
	wantStatus(t, rec, http.StatusServiceUnavailable, CodeOverloaded)

	// Releasing a slot readmits traffic.
	s.release()
	rec = doJSON(t, s, "POST", "/form", req)
	wantStatus(t, rec, http.StatusOK, "")
	if !s.acquire() {
		t.Fatal("re-acquire failed")
	}
}

// TestWorkersOverride: a parallel request forms the same groups as
// the serial default (worker-count determinism through the server),
// and an absurd client worker count is clamped to the hardware
// rather than fanning out per-user goroutines.
func TestWorkersOverride(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	serial := FormRequest{FormParams: FormParams{K: 4, L: 6, Semantics: "lm", Aggregation: "min"}}
	parallel := serial
	parallel.Workers = 4
	absurd := serial
	absurd.Workers = 1 << 30
	a := doJSON(t, s, "POST", "/form", serial)
	b := doJSON(t, s, "POST", "/form", parallel)
	c := doJSON(t, s, "POST", "/form", absurd)
	wantStatus(t, a, http.StatusOK, "")
	wantStatus(t, b, http.StatusOK, "")
	wantStatus(t, c, http.StatusOK, "")
	if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Fatal("workers=4 formed different groups than serial")
	}
	if !bytes.Equal(a.Body.Bytes(), c.Body.Bytes()) {
		t.Fatal("clamped workers formed different groups than serial")
	}
	if cfg, err := absurd.config(0); err != nil || cfg.Workers > 1024 {
		t.Fatalf("workers not clamped: %d (err %v)", cfg.Workers, err)
	}
}

// TestRoutingErrorsAreJSON: unknown routes and wrong methods keep the
// error-envelope contract instead of ServeMux's plain-text defaults.
func TestRoutingErrorsAreJSON(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	rec := doJSON(t, s, "GET", "/no/such/route", nil)
	wantStatus(t, rec, http.StatusNotFound, CodeNotFound)
	rec = doJSON(t, s, "GET", "/form", nil)
	wantStatus(t, rec, http.StatusMethodNotAllowed, CodeBadMethod)
	rec = doJSON(t, s, "DELETE", "/datasets/main", nil)
	wantStatus(t, rec, http.StatusMethodNotAllowed, CodeBadMethod)
	rec = doJSON(t, s, "POST", "/healthz", nil)
	wantStatus(t, rec, http.StatusMethodNotAllowed, CodeBadMethod)
}

// quick sanity that the semantics vocabulary used in tests matches
// the library's (a rename there should fail here loudly).
func TestVocabularyRoundTrip(t *testing.T) {
	p := FormParams{K: 1, L: 1, Semantics: "av", Aggregation: "wsum-log"}
	cfg, err := p.config(0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Semantics != semantics.AV || cfg.Aggregation != semantics.WeightedSumLog {
		t.Fatalf("cfg = %+v", cfg)
	}
}
