package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"groupform/internal/dataset"
)

// ratingsOf flattens ds into the replay log the parity oracles
// rebuild from scratch.
func ratingsOf(ds *dataset.Dataset) []dataset.Rating {
	out := make([]dataset.Rating, 0, ds.NumRatings())
	for _, u := range ds.Users() {
		for _, e := range ds.UserRatings(u) {
			out = append(out, dataset.Rating{User: u, Item: e.Item, Value: e.Value})
		}
	}
	return out
}

// oracleServer builds a fresh Server carrying the from-scratch build
// of log under the name "main" — the byte-parity reference for a
// mutated live server.
func oracleServer(t testing.TB, log []dataset.Rating) *Server {
	t.Helper()
	ds, err := dataset.FromRatings(dataset.DefaultScale, log)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	if err := s.AddDataset("main", ds); err != nil {
		t.Fatal(err)
	}
	return s
}

// assertFormParity byte-compares a /form response between the live
// (overlay-mutated) server and a from-scratch oracle.
func assertFormParity(t *testing.T, tag string, live *Server, log []dataset.Rating) {
	t.Helper()
	oracle := oracleServer(t, log)
	body := FormRequest{FormParams: FormParams{K: 3, L: 7, Semantics: "lm", Aggregation: "min"}}
	got := doJSON(t, live, "POST", "/form", body)
	want := doJSON(t, oracle, "POST", "/form", body)
	wantStatus(t, got, http.StatusOK, "")
	wantStatus(t, want, http.StatusOK, "")
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Fatalf("%s: /form response diverged from from-scratch oracle\nlive:   %s\noracle: %s",
			tag, got.Body.String(), want.Body.String())
	}
}

func TestUpsertEndpoint(t *testing.T) {
	s, ds := newTestServer(t, Config{})
	log := ratingsOf(ds)
	u := ds.Users()[3]
	it := ds.UserRatings(u)[0].Item

	// Inline single upsert: re-rate an existing pair.
	rec := doJSON(t, s, "POST", "/datasets/main/ratings",
		map[string]any{"user": u, "item": it, "value": 1})
	wantStatus(t, rec, http.StatusOK, "")
	log = append(log, dataset.Rating{User: u, Item: it, Value: 1})
	resp := decodeAs[UpsertResponse](t, rec)
	if resp.Dataset != "main" || resp.Applied != 1 || resp.Collapsed != 1 ||
		resp.NewUsers != 0 || resp.Rebuilt || resp.OverlayUpserts != 1 {
		t.Fatalf("inline upsert response = %+v", resp)
	}
	if resp.Users != ds.NumUsers() || resp.Ratings != ds.NumRatings() {
		t.Fatalf("re-rating changed sizes: %+v", resp)
	}
	assertFormParity(t, "after inline", s, log)

	// Batch upsert minting a fresh user.
	batch := []RatingJSON{
		{User: 1 << 20, Item: it, Value: 4},
		{User: u, Item: it, Value: 3},
	}
	rec = doJSON(t, s, "POST", "/datasets/main/ratings", UpsertRequest{Ratings: batch})
	wantStatus(t, rec, http.StatusOK, "")
	for _, r := range batch {
		log = append(log, dataset.Rating{User: r.User, Item: r.Item, Value: r.Value})
	}
	resp = decodeAs[UpsertResponse](t, rec)
	if resp.Applied != 2 || resp.NewUsers != 1 || resp.Users != ds.NumUsers()+1 ||
		resp.Ratings != ds.NumRatings()+1 || resp.OverlayUpserts != 3 {
		t.Fatalf("batch upsert response = %+v", resp)
	}
	assertFormParity(t, "after batch", s, log)

	// GET /datasets reflects the mutated sizes.
	infos := decodeAs[map[string]DatasetInfo](t, doJSON(t, s, "GET", "/datasets", nil))
	if infos["main"].Users != ds.NumUsers()+1 || infos["main"].Ratings != ds.NumRatings()+1 {
		t.Fatalf("GET /datasets after upserts = %+v", infos["main"])
	}
}

func TestUpsertEndpointErrors(t *testing.T) {
	s, ds := newTestServer(t, Config{})
	valid := map[string]any{"user": 1, "item": 1, "value": 3}

	cases := []struct {
		name   string
		path   string
		method string
		body   any
		status int
		code   string
	}{
		{"unknown dataset", "/datasets/nope/ratings", "POST", valid, http.StatusNotFound, CodeNotFound},
		{"wrong method", "/datasets/main/ratings", "GET", nil, http.StatusMethodNotAllowed, CodeBadMethod},
		{"inline and batch", "/datasets/main/ratings", "POST",
			map[string]any{"user": 1, "item": 1, "value": 3, "ratings": []RatingJSON{{User: 1, Item: 1, Value: 3}}},
			http.StatusBadRequest, CodeBadConfig},
		{"incomplete inline", "/datasets/main/ratings", "POST",
			map[string]any{"user": 1, "value": 3}, http.StatusBadRequest, CodeBadConfig},
		{"empty batch", "/datasets/main/ratings", "POST",
			map[string]any{"ratings": []RatingJSON{}}, http.StatusBadRequest, CodeBadConfig},
		{"no body fields", "/datasets/main/ratings", "POST",
			map[string]any{}, http.StatusBadRequest, CodeBadConfig},
		{"value off scale", "/datasets/main/ratings", "POST",
			map[string]any{"user": 1, "item": 1, "value": 99}, http.StatusBadRequest, CodeBadConfig},
		{"unknown field", "/datasets/main/ratings", "POST",
			[]byte(`{"user":1,"item":1,"value":3,"frobnicate":true}`), http.StatusBadRequest, CodeBadConfig},
		{"trailing garbage", "/datasets/main/ratings", "POST",
			[]byte(`{"user":1,"item":1,"value":3}{}`), http.StatusBadRequest, CodeBadConfig},
		{"malformed json", "/datasets/main/ratings", "POST",
			[]byte(`{"user":`), http.StatusBadRequest, CodeBadConfig},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doJSON(t, s, tc.method, tc.path, tc.body)
			wantStatus(t, rec, tc.status, tc.code)
		})
	}

	// None of the rejects may have mutated the served dataset.
	infos := decodeAs[map[string]DatasetInfo](t, doJSON(t, s, "GET", "/datasets", nil))
	if infos["main"].Users != ds.NumUsers() || infos["main"].Ratings != ds.NumRatings() {
		t.Fatalf("a rejected upsert mutated the dataset: %+v", infos["main"])
	}
}

// TestUpsertCompaction drives all three threshold regimes: the
// background trigger at CompactAfter, the inline backpressure path at
// 4x, and the negative-config opt-out.
func TestUpsertCompaction(t *testing.T) {
	s, ds := newTestServer(t, Config{CompactAfter: 2})
	log := ratingsOf(ds)
	served := func() *dataset.Dataset {
		eng, _, ok := s.reg.Get("main")
		if !ok {
			t.Fatal("dataset main vanished")
		}
		return eng.Dataset()
	}

	// One batch of 8 distinct upserts jumps straight past 4x the
	// threshold: the handler must compact inline, before responding.
	var batch []RatingJSON
	for i := 0; i < 8; i++ {
		u := ds.Users()[10+i]
		it := ds.UserRatings(u)[0].Item
		batch = append(batch, RatingJSON{User: u, Item: it, Value: float64(1 + i%5)})
		log = append(log, dataset.Rating{User: u, Item: it, Value: float64(1 + i%5)})
	}
	rec := doJSON(t, s, "POST", "/datasets/main/ratings", UpsertRequest{Ratings: batch})
	wantStatus(t, rec, http.StatusOK, "")
	resp := decodeAs[UpsertResponse](t, rec)
	if !resp.Compacting || resp.OverlayUpserts != 0 {
		t.Fatalf("8 upserts past 4x threshold: response = %+v, want inline compaction", resp)
	}
	if ov := served().Overlay(); ov != (dataset.OverlayStats{}) {
		t.Fatalf("inline compaction left an overlay: %+v", ov)
	}
	assertFormParity(t, "after inline compaction", s, log)

	// Two singles reach the plain threshold: a background compaction
	// is scheduled and lands by WaitCompactions.
	for i := 0; i < 2; i++ {
		u := ds.Users()[30+i]
		it := ds.UserRatings(u)[0].Item
		rec = doJSON(t, s, "POST", "/datasets/main/ratings",
			map[string]any{"user": u, "item": it, "value": 2})
		wantStatus(t, rec, http.StatusOK, "")
		log = append(log, dataset.Rating{User: u, Item: it, Value: 2})
	}
	resp = decodeAs[UpsertResponse](t, rec)
	if !resp.Compacting || resp.OverlayUpserts != 2 {
		t.Fatalf("threshold upsert response = %+v, want a scheduled compaction", resp)
	}
	s.WaitCompactions()
	if ov := served().Overlay(); ov != (dataset.OverlayStats{}) {
		t.Fatalf("background compaction left an overlay: %+v", ov)
	}
	assertFormParity(t, "after background compaction", s, log)

	// Negative CompactAfter disables compaction entirely.
	s2, ds2 := newTestServer(t, Config{CompactAfter: -1})
	for i := 0; i < 10; i++ {
		u := ds2.Users()[i]
		rec = doJSON(t, s2, "POST", "/datasets/main/ratings",
			map[string]any{"user": u, "item": ds2.UserRatings(u)[0].Item, "value": 5})
		wantStatus(t, rec, http.StatusOK, "")
	}
	resp = decodeAs[UpsertResponse](t, rec)
	if resp.Compacting || resp.OverlayUpserts != 10 {
		t.Fatalf("disabled compaction: response = %+v, want the overlay to just grow", resp)
	}
	s2.WaitCompactions()
}

// TestUpsertSwapUnderTraffic is the swap-under-traffic half of the
// metamorphic harness, meant for -race: concurrent /form and
// /form/batch readers ride across a stream of upserts (re-ratings
// and fresh users) with a low compaction threshold churning registry
// swaps underneath, and at the end the served dataset must still be
// byte-equivalent to a from-scratch build of the full history.
func TestUpsertSwapUnderTraffic(t *testing.T) {
	s, ds := newTestServer(t, Config{CompactAfter: 8})
	base := ratingsOf(ds)

	const (
		readers    = 4
		writers    = 2
		iterations = 25
	)
	// Each writer owns a disjoint slice of users and upserts every
	// pair exactly once, so the final dataset content is independent
	// of the interleaving the scheduler picks.
	upserts := make([][]dataset.Rating, writers)
	for w := range upserts {
		for i := 0; i < iterations; i++ {
			u := ds.Users()[w*iterations+i]
			upserts[w] = append(upserts[w], dataset.Rating{
				User: u, Item: ds.UserRatings(u)[0].Item, Value: float64(1 + (w+i)%5),
			})
			// Every 5th tick also mints a fresh user; depending on
			// the interleaving it lands as an overlay append or a
			// full rebuild — both must stay invisible to parity.
			if i%5 == 0 {
				upserts[w] = append(upserts[w], dataset.Rating{
					User:  dataset.UserID(1<<20 + w*iterations + i),
					Item:  ds.UserRatings(u)[0].Item,
					Value: 3,
				})
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				var rec = doJSON(t, s, "POST", "/form", FormRequest{FormParams: FormParams{
					K: 3, L: 7, Semantics: []string{"lm", "av"}[i%2], Aggregation: []string{"min", "max", "sum"}[i%3],
				}})
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("reader %d it %d: /form status %d: %s", g, i, rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, r := range upserts[w] {
				rec := doJSON(t, s, "POST", "/datasets/main/ratings",
					map[string]any{"user": r.User, "item": r.Item, "value": r.Value})
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("writer %d: upsert status %d: %s", w, rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	s.WaitCompactions()
	if n := s.LeasedScratches(); n != 0 {
		t.Fatalf("%d scratch leases leaked across the traffic", n)
	}

	log := base
	for _, ws := range upserts {
		log = append(log, ws...)
	}
	assertFormParity(t, "after swap-under-traffic", s, log)
}
