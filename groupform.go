// Package groupform is a Go implementation of recommendation-aware
// group formation, reproducing "From Group Recommendations to Group
// Formation" (Roy, Lakshmanan, Liu; SIGMOD 2015).
//
// Given a population of users with explicit item ratings, a group
// recommendation semantics (Least Misery or Aggregate Voting), a list
// length k and a group budget l, the library partitions the users
// into at most l groups so that the summed satisfaction of the groups
// with their recommended top-k item lists is (approximately)
// maximized. The problem is NP-hard; the greedy algorithms here run
// in O(nk + l log n) and carry absolute-error guarantees under LM.
//
// # Quick start
//
//	ds, err := groupform.LoadCSV(file, groupform.DefaultScale)
//	...
//	eng, err := groupform.NewEngine(ds)
//	...
//	res, err := eng.Form(ctx, groupform.Config{
//		K: 5, L: 10,
//		Semantics:   groupform.LM,
//		Aggregation: groupform.Min,
//	})
//	for _, g := range res.Groups {
//		fmt.Println(g.Members, g.Items, g.Satisfaction)
//	}
//
// The Engine caches the per-dataset preprocessing between calls; for
// one-shot solves, or to run any other algorithm, go through the
// registry instead:
//
//	s, err := groupform.NewSolver("ls", groupform.WithSeed(7),
//		groupform.WithBudget(2*time.Second))
//	res, err := s.Solve(ctx, ds, cfg)
//
// groupform.Solvers() lists the registered algorithms; every solver
// honors context cancellation (errors wrap groupform.ErrCanceled) and
// classifies failures with the ErrBadConfig / ErrTooLarge sentinels.
//
// # Parallelism
//
// Setting Config.Workers to N >= 2 runs the formation pipeline —
// preference lists, bucketizing, and group finalization — on a pool
// of N workers (-1 means all CPUs). The result is byte-identical to
// the serial path for every worker count — unconditionally under LM,
// and under AV for exactly-representable weighted ratings (any
// dyadic scale, including the usual 1-5 stars; see core.Config's
// Workers field for the one last-ulp caveat on non-dyadic AV data) —
// so Workers moves the wall clock, not the groups. LSOptions.Workers
// likewise fans local-search restarts out. See docs/ARCHITECTURE.md
// for the sharding strategy and determinism argument.
//
// Beyond the greedy algorithms the package exposes the paper's
// clustering baselines (FormBaseline), optimal reference solvers
// (FormExact for small instances, FormLocalSearch as a scalable
// proxy, SolveIP for the Appendix-A integer programs at k=1),
// collaborative-filtering predictors to densify sparse ratings, and
// synthetic dataset generators mirroring the paper's evaluation data.
package groupform

import (
	"context"
	"io"

	"groupform/internal/baseline"
	"groupform/internal/cf"
	"groupform/internal/core"
	"groupform/internal/dataset"
	"groupform/internal/eval"
	"groupform/internal/gferr"
	"groupform/internal/ilp"
	"groupform/internal/opt"
	"groupform/internal/semantics"
	"groupform/internal/stats"
	"groupform/internal/synth"
)

// Core data types, re-exported from the internal packages so that
// values flow freely between the facade and the internals.
type (
	// UserID identifies a user.
	UserID = dataset.UserID
	// ItemID identifies an item.
	ItemID = dataset.ItemID
	// Scale bounds rating values (rmin, rmax).
	Scale = dataset.Scale
	// Rating is a (user, item, value) triple.
	Rating = dataset.Rating
	// Entry is an (item, value) pair owned by some user.
	Entry = dataset.Entry
	// Dataset is an immutable sparse rating matrix.
	Dataset = dataset.Dataset
	// Builder accumulates ratings into a Dataset.
	Builder = dataset.Builder
	// UpsertResult summarizes one Dataset.Upsert batch.
	UpsertResult = dataset.UpsertResult
	// OverlayStats describes a dataset's pending delta overlay.
	OverlayStats = dataset.OverlayStats

	// Semantics selects LM or AV group scoring.
	Semantics = semantics.Semantics
	// Aggregation selects Max/Min/Sum/weighted satisfaction.
	Aggregation = semantics.Aggregation
	// Scorer evaluates group item scores and top-k lists.
	Scorer = semantics.Scorer

	// Config parameterizes a formation run (K, L, semantics,
	// aggregation, missing-rating policy, worker count).
	Config = core.Config
	// Group is a formed group with its recommended list.
	Group = core.Group
	// Result is a formation outcome: groups plus objective.
	Result = core.Result

	// BaselineConfig parameterizes the clustering baselines.
	BaselineConfig = baseline.Config
	// BaselineMethod selects the clustering backend.
	BaselineMethod = baseline.Method

	// LSOptions tunes the local-search optimizer.
	LSOptions = opt.LSOptions
	// BBOptions bounds the branch-and-bound optimizer.
	BBOptions = opt.BBOptions
	// IPOptions bounds the integer-programming solver.
	IPOptions = ilp.Options

	// Predictor estimates missing ratings.
	Predictor = cf.Predictor
	// MFConfig tunes the matrix-factorization predictor.
	MFConfig = cf.MFConfig

	// SynthConfig parameterizes synthetic dataset generation.
	SynthConfig = synth.Config

	// FivePoint is a min/Q1/median/Q3/max summary.
	FivePoint = stats.FivePoint
)

// Semantics and aggregation constants.
const (
	// LM is the Least Misery semantics (Definition 1).
	LM = semantics.LM
	// AV is the Aggregate Voting semantics (Definition 2).
	AV = semantics.AV

	// Max scores a list by its best item.
	Max = semantics.Max
	// Min scores a list by its k-th item.
	Min = semantics.Min
	// Sum scores a list by the sum over its items.
	Sum = semantics.Sum
	// WeightedSumPos discounts positions by 1/(pos+1) (Section 6).
	WeightedSumPos = semantics.WeightedSumPos
	// WeightedSumLog discounts positions by 1/log2(pos+2).
	WeightedSumLog = semantics.WeightedSumLog

	// KendallMedoids clusters with k-medoids over Kendall-Tau
	// ranking distance (the paper's literal baseline).
	KendallMedoids = baseline.KendallMedoids
	// VectorKMeans clusters rating vectors with Lloyd's algorithm
	// (the scalable baseline).
	VectorKMeans = baseline.VectorKMeans
	// ClaraMedoids is sampled Kendall-Tau k-medoids (CLARA), the
	// middle ground between the two.
	ClaraMedoids = baseline.ClaraMedoids
)

// DefaultScale is the 1-5 rating scale of the paper's datasets.
var DefaultScale = dataset.DefaultScale

// NewBuilder returns a rating builder enforcing the scale.
func NewBuilder(scale Scale) *Builder { return dataset.NewBuilder(scale) }

// FromDense builds a complete matrix dataset from rows[user][item].
func FromDense(scale Scale, rows [][]float64) (*Dataset, error) {
	return dataset.FromDense(scale, rows)
}

// FromRatings builds a dataset from rating triples.
func FromRatings(scale Scale, rs []Rating) (*Dataset, error) {
	return dataset.FromRatings(scale, rs)
}

// LoadMovieLens parses the MovieLens "user::item::rating::ts" format.
func LoadMovieLens(r io.Reader, scale Scale) (*Dataset, error) {
	return dataset.LoadMovieLens(r, scale)
}

// LoadCSV parses "user,item,rating" rows (optional header).
func LoadCSV(r io.Reader, scale Scale) (*Dataset, error) {
	return dataset.LoadCSV(r, scale)
}

// Load reads a dataset from r, auto-detecting the container: streams
// starting with the binary magic load through ReadBinary, anything
// else parses as CSV against the scale.
func Load(r io.Reader, scale Scale) (*Dataset, error) { return dataset.Load(r, scale) }

// WriteCSV writes the dataset as CSV, the inverse of LoadCSV.
func WriteCSV(w io.Writer, ds *Dataset) error { return dataset.WriteCSV(w, ds) }

// WriteBinary writes the dataset in the compact binary format: the
// CSR storage arrays serialized directly, so loading is a handful of
// bulk reads — an order of magnitude faster than CSV at scalability
// sizes.
func WriteBinary(w io.Writer, ds *Dataset) error { return dataset.WriteBinary(w, ds) }

// ReadBinary loads a dataset written by WriteBinary (current or
// legacy version; malformed input errors wrap ErrBadConfig).
func ReadBinary(r io.Reader) (*Dataset, error) { return dataset.ReadBinary(r) }

// legacySolve routes a deprecated wrapper through the registry with a
// background context, preserving the historical no-cancellation
// behavior.
func legacySolve(name string, ds *Dataset, cfg Config, opts ...SolverOption) (*Result, error) {
	s, err := NewSolver(name, opts...)
	if err != nil {
		return nil, err
	}
	return s.Solve(context.Background(), ds, cfg)
}

// Form runs the paper's greedy group-formation algorithm selected by
// cfg (GRD-LM-* / GRD-AV-*). O(nk + l log n).
//
// Deprecated: Use NewSolver("grd") for one-shot solves with
// cancellation, or an Engine to amortize preprocessing across calls.
func Form(ds *Dataset, cfg Config) (*Result, error) {
	return legacySolve("grd", ds, cfg)
}

// FormBaseline runs the clustering baseline (Baseline-LM/AV).
//
// Deprecated: Use NewSolver("baseline-kendall"), "baseline-kmeans" or
// "baseline-clara" with WithSeed / WithMaxIter / WithPlusPlus.
func FormBaseline(ds *Dataset, cfg BaselineConfig) (*Result, error) {
	var name string
	switch cfg.Method {
	case KendallMedoids:
		name = "baseline-kendall"
	case VectorKMeans:
		name = "baseline-kmeans"
	case ClaraMedoids:
		name = "baseline-clara"
	default:
		return nil, gferr.BadConfigf("baseline: Method %d is unknown", int(cfg.Method))
	}
	return legacySolve(name, ds, cfg.Config,
		WithSeed(cfg.Seed), WithMaxIter(cfg.MaxIter), WithPlusPlus(cfg.PlusPlus))
}

// FormExact computes the optimal grouping by dynamic programming over
// subsets; limited to small instances (<= opt.MaxExactUsers users).
//
// Deprecated: Use NewSolver("exact").
func FormExact(ds *Dataset, cfg Config) (*Result, error) {
	return legacySolve("exact", ds, cfg)
}

// FormLocalSearch improves the greedy solution by hill climbing or
// annealing; the scalable stand-in for the paper's CPLEX reference.
//
// Deprecated: Use NewSolver("ls", WithLSOptions(opts)).
func FormLocalSearch(ds *Dataset, cfg Config, opts LSOptions) (*Result, error) {
	return legacySolve("ls", ds, cfg, WithLSOptions(opts))
}

// FormBranchAndBound computes an optimal grouping by pruned partition
// enumeration; exact like FormExact but reaches larger instances on
// structured data (and degrades gracefully via BBOptions.MaxNodes).
//
// Deprecated: Use NewSolver("bb", WithBBOptions(opts)).
func FormBranchAndBound(ds *Dataset, cfg Config, opts BBOptions) (*Result, error) {
	return legacySolve("bb", ds, cfg, WithBBOptions(opts))
}

// SolveIP solves the paper's Appendix-A integer program (k = 1) with
// the built-in simplex + branch-and-bound solver, returning the
// optimal partition and objective.
//
// Deprecated: Use NewSolver("ip", WithIPOptions(opts)), which returns
// the partition as a *Result like every other solver.
func SolveIP(ds *Dataset, l int, sem Semantics, opts IPOptions) ([][]UserID, float64, error) {
	res, err := legacySolve("ip", ds, Config{K: 1, L: l, Semantics: sem, Aggregation: Min},
		WithIPOptions(opts))
	if err != nil {
		return nil, 0, err
	}
	groups := make([][]UserID, len(res.Groups))
	for i, g := range res.Groups {
		groups[i] = g.Members
	}
	return groups, res.Objective, nil
}

// NewUserKNN trains a user-based kNN rating predictor.
func NewUserKNN(ds *Dataset, k int) (Predictor, error) { return cf.NewUserKNN(ds, k) }

// NewItemKNN trains an item-based kNN rating predictor.
func NewItemKNN(ds *Dataset, k int) (Predictor, error) { return cf.NewItemKNN(ds, k) }

// NewMF trains a biased matrix-factorization predictor with SGD.
func NewMF(ds *Dataset, cfg MFConfig) (Predictor, error) { return cf.NewMF(ds, cfg) }

// NewSlopeOne trains a weighted Slope One predictor.
func NewSlopeOne(ds *Dataset) (Predictor, error) { return cf.NewSlopeOne(ds) }

// CrossValidate runs k-fold cross-validation of a predictor trainer.
func CrossValidate(ds *Dataset, folds int, seed int64, train func(*Dataset) (Predictor, error)) (cf.CVResult, error) {
	return cf.CrossValidate(ds, folds, seed, train)
}

// Densify completes a sparse dataset with clamped predictions — the
// paper's collaborative-filtering pre-processing.
func Densify(ds *Dataset, p Predictor) (*Dataset, error) { return cf.Densify(ds, p) }

// DensifyQuantized is Densify with predictions rounded to the nearest
// multiple of step, keeping the completed matrix on the discrete
// rating lattice the greedy bucketization relies on.
func DensifyQuantized(ds *Dataset, p Predictor, step float64) (*Dataset, error) {
	return cf.DensifyQuantized(ds, p, step)
}

// Generate produces a synthetic clustered rating dataset.
func Generate(cfg SynthConfig) (*Dataset, error) { return synth.Generate(cfg) }

// YahooLike generates a Yahoo!-Music-like synthetic dataset.
func YahooLike(users, items int, seed int64) (*Dataset, error) {
	return synth.YahooLike(users, items, seed)
}

// MovieLensLike generates a MovieLens-like synthetic dataset.
func MovieLensLike(users, items int, seed int64) (*Dataset, error) {
	return synth.MovieLensLike(users, items, seed)
}

// AvgGroupSatisfaction is the paper's per-group average satisfaction
// metric over the recommended top-k lists.
func AvgGroupSatisfaction(res *Result) (float64, error) {
	return eval.AvgGroupSatisfaction(res)
}

// AvgGroupSatisfactionPerMember is the per-member variant used by the
// paper's Figure 3 (bounded by k*rmax under AV semantics).
func AvgGroupSatisfactionPerMember(res *Result) (float64, error) {
	return eval.AvgGroupSatisfactionPerMember(res)
}

// GroupSizeSummary returns the 5-point summary of group sizes
// (Table 4's statistic).
func GroupSizeSummary(res *Result) (FivePoint, error) { return eval.SizeSummary(res) }

// PerUserSatisfaction maps every grouped user to their individual
// satisfaction with their group's recommended list.
func PerUserSatisfaction(ds *Dataset, res *Result, missing float64) (map[UserID]float64, error) {
	return eval.PerUserSatisfaction(ds, res, missing)
}

// MeanNDCG is the Section 6 user-level weighted satisfaction metric.
func MeanNDCG(ds *Dataset, res *Result, missing float64) (float64, error) {
	return eval.MeanNDCG(ds, res, missing)
}
