// Benchmarks for every table and figure in the paper's evaluation
// (Section 7), plus micro-benchmarks of the core operations. Each
// BenchmarkFigure*/BenchmarkTable* regenerates the corresponding
// exhibit at the small scale; run
//
//	go test -bench=. -benchmem
//
// for the full sweep, or `go run ./cmd/experiments -paper` to
// regenerate the exhibits at the paper's parameter scales.
package groupform

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"groupform/internal/baseline"
	"groupform/internal/core"
	"groupform/internal/dataset"
	"groupform/internal/experiments"
	"groupform/internal/ilp"
	"groupform/internal/metrics"
	"groupform/internal/opt"
	"groupform/internal/rank"
	"groupform/internal/selection"
	"groupform/internal/semantics"
	"groupform/internal/solver"
	"groupform/internal/synth"
	"groupform/internal/wire"
)

// benchExhibit runs one experiments harness per iteration.
func benchExhibit(b *testing.B, run experiments.Runner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ex, err := run(experiments.Options{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if len(ex.Series) == 0 && ex.Notes == "" {
			b.Fatal("empty exhibit")
		}
	}
}

// Quality experiments (Figures 1-3, Tables 3-4).

func BenchmarkTable3(b *testing.B)   { benchExhibit(b, experiments.Table3) }
func BenchmarkFigure1a(b *testing.B) { benchExhibit(b, experiments.Figure1a) }
func BenchmarkFigure1b(b *testing.B) { benchExhibit(b, experiments.Figure1b) }
func BenchmarkFigure1c(b *testing.B) { benchExhibit(b, experiments.Figure1c) }
func BenchmarkFigure2a(b *testing.B) { benchExhibit(b, experiments.Figure2a) }
func BenchmarkFigure2b(b *testing.B) { benchExhibit(b, experiments.Figure2b) }
func BenchmarkFigure3a(b *testing.B) { benchExhibit(b, experiments.Figure3a) }
func BenchmarkFigure3b(b *testing.B) { benchExhibit(b, experiments.Figure3b) }
func BenchmarkFigure3c(b *testing.B) { benchExhibit(b, experiments.Figure3c) }
func BenchmarkFigure3d(b *testing.B) { benchExhibit(b, experiments.Figure3d) }
func BenchmarkTable4(b *testing.B)   { benchExhibit(b, experiments.Table4) }

// Scalability experiments (Figures 4-6).

func BenchmarkFigure4a(b *testing.B) { benchExhibit(b, experiments.Figure4a) }
func BenchmarkFigure4b(b *testing.B) { benchExhibit(b, experiments.Figure4b) }
func BenchmarkFigure4c(b *testing.B) { benchExhibit(b, experiments.Figure4c) }
func BenchmarkFigure5a(b *testing.B) { benchExhibit(b, experiments.Figure5a) }
func BenchmarkFigure5b(b *testing.B) { benchExhibit(b, experiments.Figure5b) }
func BenchmarkFigure5c(b *testing.B) { benchExhibit(b, experiments.Figure5c) }
func BenchmarkFigure5d(b *testing.B) { benchExhibit(b, experiments.Figure5d) }
func BenchmarkFigure6a(b *testing.B) { benchExhibit(b, experiments.Figure6a) }
func BenchmarkFigure6b(b *testing.B) { benchExhibit(b, experiments.Figure6b) }
func BenchmarkFigure6c(b *testing.B) { benchExhibit(b, experiments.Figure6c) }

// User study (Figure 7).

func BenchmarkFigure7(b *testing.B) { benchExhibit(b, experiments.Figure7) }

// ---------------------------------------------------------------
// Micro-benchmarks of the core operations.

func benchDataset(b *testing.B, n, m int) *dataset.Dataset {
	b.Helper()
	ds, err := synth.YahooLike(n, m, 1)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkGRD measures the greedy formation across semantics and
// aggregations at a fixed size (the ablation over the six algorithm
// variants).
func BenchmarkGRD(b *testing.B) {
	ds := benchDataset(b, 10000, 2000)
	for _, sem := range []semantics.Semantics{semantics.LM, semantics.AV} {
		for _, agg := range []semantics.Aggregation{semantics.Max, semantics.Min, semantics.Sum} {
			cfg := core.Config{K: 5, L: 10, Semantics: sem, Aggregation: agg}
			b.Run(fmt.Sprintf("%s-%s", sem, agg), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Form(context.Background(), ds, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGRDUsers is the Figure-4a ablation as a Go benchmark:
// formation time versus the user count, one sub-benchmark per n.
func BenchmarkGRDUsers(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		ds := benchDataset(b, n, 2000)
		cfg := core.Config{K: 5, L: 10, Semantics: semantics.LM, Aggregation: semantics.Min}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Form(context.Background(), ds, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGRDParallel is the serial-vs-parallel comparison of the
// sharded formation pipeline: GRD-LM-Min across the paper's
// user-count sweep at worker counts 1, 2 and 8. Every cell forms
// byte-identical groups (the pipeline's determinism contract), so
// the ratio between the workers=1 and workers=8 rows of one n is a
// pure speedup measurement. The ceiling is min(workers, GOMAXPROCS);
// see docs/ARCHITECTURE.md for measured numbers.
func BenchmarkGRDParallel(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		ds := benchDataset(b, n, 2000)
		for _, w := range []int{1, 2, 8} {
			cfg := core.Config{
				K: 5, L: 10,
				Semantics: semantics.LM, Aggregation: semantics.Min,
				Workers: w,
			}
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.Form(context.Background(), ds, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGRDParallelAV is the AV-side companion: the merged l-th
// group's chunked top-k accumulation dominates here.
func BenchmarkGRDParallelAV(b *testing.B) {
	ds := benchDataset(b, 100000, 2000)
	for _, w := range []int{1, 2, 8} {
		cfg := core.Config{
			K: 5, L: 10,
			Semantics: semantics.AV, Aggregation: semantics.Min,
			Workers: w,
		}
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Form(context.Background(), ds, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGRDTopK mirrors Figure 5: k grows geometrically.
func BenchmarkGRDTopK(b *testing.B) {
	ds := benchDataset(b, 10000, 2000)
	for _, k := range []int{5, 25, 125, 625} {
		cfg := core.Config{K: k, L: 10, Semantics: semantics.LM, Aggregation: semantics.Min}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Form(context.Background(), ds, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaseline measures the two clustering backends.
func BenchmarkBaseline(b *testing.B) {
	small := benchDataset(b, 300, 100)
	big := benchDataset(b, 10000, 2000)
	cfg := core.Config{K: 5, L: 10, Semantics: semantics.LM, Aggregation: semantics.Min}
	b.Run("kendall-medoids-n=300", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.Form(context.Background(), small, baseline.Config{Config: cfg, Method: baseline.KendallMedoids, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vector-kmeans-n=10000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.Form(context.Background(), big, baseline.Config{Config: cfg, Method: baseline.VectorKMeans, MaxIter: 10, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkKendallTau measures the O(m log m) distance on dense score
// vectors.
func BenchmarkKendallTau(b *testing.B) {
	for _, m := range []int{100, 1000, 10000} {
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := range xs {
			xs[i] = float64((i * 7919) % 101)
			ys[i] = float64((i * 104729) % 97)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rank.KendallTau(xs, ys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScorerTopK measures the group top-k computation (the
// merged l-th group's cost) for growing group sizes, comparing the
// dense index-space accumulation against the legacy map backend
// (B/op and allocs/op are the interesting columns: the dense path
// runs on pooled flat arrays).
func BenchmarkScorerTopK(b *testing.B) {
	ds := benchDataset(b, 20000, 2000)
	users := ds.Users()
	for _, backend := range []struct {
		name  string
		accum semantics.Accum
	}{{"dense", semantics.AccumDense}, {"map", semantics.AccumMap}} {
		sc := semantics.Scorer{DS: ds, Accum: backend.accum}
		for _, size := range []int{100, 1000, 10000} {
			members := users[:size]
			b.Run(fmt.Sprintf("%s/members=%d", backend.name, size), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := sc.TopK(semantics.LM, members, 5); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAllTopK measures the O(nk) preference-list construction —
// the other half of the greedy preprocessing — straight off the CSR
// rows. The arena backing means allocs/op stays O(1) in n.
func BenchmarkAllTopK(b *testing.B) {
	ds := benchDataset(b, 10000, 2000)
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rank.AllTopKParallel(context.Background(), ds, 5, 0, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExact measures the subset-DP optimal solver at its
// feasibility edge.
func BenchmarkExact(b *testing.B) {
	for _, n := range []int{8, 12} {
		ds, err := synth.Generate(synth.Config{Users: n, Items: 6, Clusters: 3, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.Config{K: 2, L: 3, Semantics: semantics.LM, Aggregation: semantics.Min}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := opt.Exact(context.Background(), ds, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocalSearch measures the OPT proxy at quality-experiment
// scale.
func BenchmarkLocalSearch(b *testing.B) {
	ds, err := synth.Generate(synth.Config{Users: 200, Items: 100, Clusters: 20, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{K: 5, L: 10, Semantics: semantics.LM, Aggregation: semantics.Min}
	for i := 0; i < b.N; i++ {
		if _, err := opt.LocalSearch(context.Background(), ds, cfg, opt.LSOptions{Iterations: 2000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkILP measures the Appendix-A integer program on the paper's
// Example 1 (the k=1 optimal reference).
func BenchmarkILP(b *testing.B) {
	ds, err := dataset.FromDense(dataset.DefaultScale, [][]float64{
		{1, 4, 3}, {2, 3, 5}, {2, 5, 1}, {2, 5, 1}, {3, 1, 1}, {1, 2, 5},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := ilp.SolveGF(context.Background(), ds, 3, semantics.LM, ilp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineForm measures the serving-path win of the Engine's
// preference-list cache at the acceptance scale (n = 10k): "cold"
// pays the O(nk) list construction on every iteration (a fresh
// engine each time, i.e. the legacy one-shot path), "warm" reuses one
// bound engine the way a serving process would. Two workload shapes:
// "yahoo" is the sparse scalability substrate, where the merged
// group's top-k dominates and the cache still takes ~35% off;
// "clustered" is a taste-community catalog (the serving scenario the
// Engine exists for), where preference lists dominate and the warm
// path runs >= 2x faster (measured ~2.9x on the CI substrate).
func BenchmarkEngineForm(b *testing.B) {
	shapes := []struct {
		name string
		gen  func() (*dataset.Dataset, error)
		l    int
	}{
		{"yahoo", func() (*dataset.Dataset, error) { return synth.YahooLike(10_000, 1_000, 3) }, 10},
		{"clustered", func() (*dataset.Dataset, error) {
			return synth.Generate(synth.Config{
				Users: 10_000, Items: 1_000, Clusters: 200,
				RatingsPerUser: 60, OrderCorrelation: 0.9, Seed: 3,
			})
		}, 50},
	}
	ctx := context.Background()
	for _, shape := range shapes {
		ds, err := shape.gen()
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.Config{K: 5, L: shape.l, Semantics: semantics.LM, Aggregation: semantics.Min}
		b.Run(shape.name+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := solver.NewEngine(ds)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Form(ctx, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(shape.name+"/warm", func(b *testing.B) {
			eng, err := solver.NewEngine(ds)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Form(ctx, cfg); err != nil { // prime the cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Form(ctx, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		// warm-overlay measures the overlay-read overhead on the same
		// warm path: identical ratings, but 256 of the rows resolve
		// through the delta overlay's map instead of the frozen CSR
		// arrays. The delta from the warm cell is the per-solve price
		// of serving between upsert and compaction.
		b.Run(shape.name+"/warm-overlay", func(b *testing.B) {
			dsOv, eng := overlayEngine(b, ds, cfg, 256)
			if _, err := eng.Form(ctx, cfg); err != nil {
				b.Fatal(err)
			}
			if dsOv.Overlay().DirtyRows == 0 {
				b.Fatal("overlay did not take the fast path")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Form(ctx, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// overlayEngine re-rates `rows` distinct users of ds and rides the
// delta through Engine.Advance: the warm-cache engine a serving
// process holds between an upsert burst and the next compaction.
func overlayEngine(b *testing.B, ds *dataset.Dataset, cfg core.Config, rows int) (*dataset.Dataset, *solver.Engine) {
	b.Helper()
	eng, err := solver.NewEngine(ds)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Form(context.Background(), cfg); err != nil { // prime
		b.Fatal(err)
	}
	users := ds.Users()
	batch := make([]dataset.Rating, rows)
	for i := range batch {
		u := users[(i*37)%len(users)]
		batch[i] = dataset.Rating{User: u, Item: ds.UserRatings(u)[0].Item, Value: float64(1 + i%5)}
	}
	dsOv, res, err := ds.Upsert(batch)
	if err != nil {
		b.Fatal(err)
	}
	eng, err = eng.Advance(dsOv, res)
	if err != nil {
		b.Fatal(err)
	}
	return dsOv, eng
}

// BenchmarkRatingUpsert is the ingest path's unit cost at the
// acceptance scale (n = 10k): derive a successor Dataset with Upsert
// and a successor Engine with Advance against a warm preference-list
// cache — the work one POST /datasets/{name}/ratings performs between
// decode and registry swap. Every iteration starts from the same base
// snapshot, so the number is a steady per-batch cost, not an
// accumulating overlay.
func BenchmarkRatingUpsert(b *testing.B) {
	ds := benchDataset(b, 10_000, 1_000)
	cfg := core.Config{K: 5, L: 10, Semantics: semantics.LM, Aggregation: semantics.Min}
	eng, err := solver.NewEngine(ds)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Form(context.Background(), cfg); err != nil {
		b.Fatal(err)
	}
	users := ds.Users()
	for _, size := range []int{1, 64} {
		batch := make([]dataset.Rating, size)
		for i := range batch {
			u := users[(i*131)%len(users)]
			batch[i] = dataset.Rating{User: u, Item: ds.UserRatings(u)[0].Item, Value: float64(1 + i%5)}
		}
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nds, res, err := ds.Upsert(batch)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Advance(nds, res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompaction measures rebuilding the frozen CSR out of an
// overlay-carrying dataset (the background republish step) at n = 10k
// with 1024 pending upserts.
func BenchmarkCompaction(b *testing.B) {
	ds := benchDataset(b, 10_000, 1_000)
	users := ds.Users()
	cur := ds
	for start := 0; start < 1024; start += 64 {
		batch := make([]dataset.Rating, 64)
		for i := range batch {
			u := users[(start+i*17)%len(users)]
			batch[i] = dataset.Rating{User: u, Item: ds.UserRatings(u)[0].Item, Value: float64(1 + i%5)}
		}
		var err error
		if cur, _, err = cur.Upsert(batch); err != nil {
			b.Fatal(err)
		}
	}
	if cur.Overlay().Upserts != 1024 {
		b.Fatalf("overlay holds %d upserts, want 1024", cur.Overlay().Upserts)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cur.Compact().NumRatings() != ds.NumRatings() {
			b.Fatal("compaction changed the rating count")
		}
	}
}

// BenchmarkEngineFormSteadyState is the tentpole's serving-path
// benchmark: one bound Engine, one caller-owned Scratch, warm
// preference lists — the per-request cost of a zero-allocation
// steady-state solve at the acceptance scale (n = 10k). allocs/op is
// the headline column and must read 0; TestEngineFormIntoSteadyState-
// ZeroAlloc asserts the same bar in the test suite.
func BenchmarkEngineFormSteadyState(b *testing.B) {
	ds := benchDataset(b, 10_000, 1_000)
	eng, err := solver.NewEngine(ds)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{K: 5, L: 10, Semantics: semantics.LM, Aggregation: semantics.Min}
	s := core.NewScratch()
	ctx := context.Background()
	for i := 0; i < 3; i++ { // warm cache, arenas, intern table
		if _, err := eng.FormInto(ctx, cfg, s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.FormInto(ctx, cfg, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnytimeEngineFormSteadyState measures what arming
// Config.Anytime costs a solve that is never cut: the answer must be
// nothing — same warm steady state as BenchmarkEngineFormSteadyState,
// allocs/op still 0 (asserted by TestEngineFormIntoAnytime-
// SteadyStateZeroAlloc).
func BenchmarkAnytimeEngineFormSteadyState(b *testing.B) {
	ds := benchDataset(b, 10_000, 1_000)
	eng, err := solver.NewEngine(ds)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{K: 5, L: 10, Semantics: semantics.LM, Aggregation: semantics.Min, Anytime: true}
	s := core.NewScratch()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := eng.FormInto(ctx, cfg, s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.FormInto(ctx, cfg, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnytimeDegradedForm measures the degrade path itself: a
// warm solve whose context trips at the last cancellation touchpoint,
// so every iteration assembles a best-so-far incumbent plus its
// quality certificate instead of finishing. The delta against
// BenchmarkAnytimeEngineFormSteadyState is the price of returning
// early with a certificate.
func BenchmarkAnytimeDegradedForm(b *testing.B) {
	ds := benchDataset(b, 10_000, 1_000)
	eng, err := solver.NewEngine(ds)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{K: 5, L: 10, Semantics: semantics.LM, Aggregation: semantics.Min, Anytime: true}
	s := core.NewScratch()
	for i := 0; i < 3; i++ {
		if _, err := eng.FormInto(context.Background(), cfg, s); err != nil {
			b.Fatal(err)
		}
	}
	// Count the warm solve's touchpoints, then pick the latest trip
	// point that actually degrades.
	probe := &tripCtx{remaining: 1 << 20}
	if _, err := eng.FormInto(probe, cfg, s); err != nil {
		b.Fatal(err)
	}
	trip := -1
	for n := probe.calls(1<<20) - 1; n >= 0; n-- {
		res, err := eng.FormInto(&tripCtx{remaining: n}, cfg, s)
		if err == nil && res.Partial != nil {
			trip = n
			break
		}
	}
	if trip < 0 {
		b.Fatal("no trip point degrades the warm solve")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.FormInto(&tripCtx{remaining: trip}, cfg, s)
		if err != nil {
			b.Fatal(err)
		}
		if res.Partial == nil {
			b.Fatal("degraded solve returned no certificate")
		}
	}
}

// BenchmarkTopKSelect pits the k-bounded selection kernel against the
// historical full sort + truncate on the pipeline's candidate shape,
// at m candidates and list length k. The kernel's win is the point of
// internal/selection: one comparison per rejected candidate instead
// of O(m log m) swap traffic.
func BenchmarkTopKSelect(b *testing.B) {
	type cand struct {
		item  dataset.ItemID
		score float64
	}
	less := func(x, y cand) bool {
		if x.score != y.score {
			return x.score > y.score
		}
		return x.item < y.item
	}
	for _, m := range []int{1_000, 100_000} {
		base := make([]cand, m)
		rng := rand.New(rand.NewSource(int64(m)))
		for i := range base {
			base[i] = cand{item: dataset.ItemID(i), score: float64(rng.Intn(11))}
		}
		work := make([]cand, m)
		for _, k := range []int{5, 50} {
			b.Run(fmt.Sprintf("kernel/m=%d/k=%d", m, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					copy(work, base)
					selection.TopK(work, k, less)
				}
			})
			b.Run(fmt.Sprintf("fullsort/m=%d/k=%d", m, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					copy(work, base)
					sort.Slice(work, func(x, y int) bool { return less(work[x], work[y]) })
				}
			})
		}
	}
}

// BenchmarkServerForm is the serving tier's per-request cost: one
// POST /form through the full handler — strict JSON decode, registry
// lookup, pooled-scratch FormInto on warm preference lists, JSON
// encode — with no network in the way (httptest request/recorder).
// The solve section inside it is pinned at 0 allocs/op by
// TestServerFormSteadyStateZeroAlloc; the allocs this benchmark
// reports are the JSON/HTTP envelope, which the bench-regression
// guard keeps from creeping.
func BenchmarkServerForm(b *testing.B) {
	ds := benchDataset(b, 10_000, 1_000)
	srv := NewServer(ServerConfig{})
	if err := srv.AddDataset("main", ds); err != nil {
		b.Fatal(err)
	}
	body := []byte(`{"dataset":"main","k":5,"l":10,"semantics":"lm","agg":"min"}`)
	do := func() int {
		req := httptest.NewRequest("POST", "/form", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Code
	}
	for i := 0; i < 3; i++ { // warm the pref cache and scratch pool
		if code := do(); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}

// benchRecorder is a reusable http.ResponseWriter: the header map and
// body buffer persist across requests so allocs/op measures the
// server, not the recorder.
type benchRecorder struct {
	hdr  http.Header
	body []byte
	code int
}

func (r *benchRecorder) Header() http.Header { return r.hdr }
func (r *benchRecorder) WriteHeader(c int)   { r.code = c }
func (r *benchRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	r.body = append(r.body, p...)
	return len(p), nil
}

// BenchmarkServerFormBinary is BenchmarkServerForm's zero-copy
// counterpart: the same solve through the binary wire path —
// application/x-groupform-binary in and out, pooled body buffer,
// aliasing decode, arena-backed encode. allocs/op is the headline
// column; the zero-alloc guard pins it at <= 5 and the bench
// regression gate keeps both columns from creeping. Compare ns/op and
// B/op against BenchmarkServerForm for the envelope's price.
func BenchmarkServerFormBinary(b *testing.B) {
	ds := benchDataset(b, 10_000, 1_000)
	srv := NewServer(ServerConfig{})
	if err := srv.AddDataset("main", ds); err != nil {
		b.Fatal(err)
	}
	frame := wire.AppendFormRequest(nil, wire.FormRequest{
		Dataset: []byte("main"), K: 5, L: 10,
		Semantics: semantics.LM, Aggregation: semantics.Min,
	})
	body := bytes.NewReader(frame)
	req := httptest.NewRequest("POST", "/form", body)
	req.Header.Set("Content-Type", wire.ContentType)
	req.Header.Set("Accept", wire.ContentType)
	rec := &benchRecorder{hdr: make(http.Header)}
	do := func() {
		if _, err := body.Seek(0, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		rec.body, rec.code = rec.body[:0], 0
		srv.ServeHTTP(rec, req)
		if rec.code != 200 {
			b.Fatalf("status %d (%s)", rec.code, rec.body)
		}
	}
	for i := 0; i < 3; i++ { // warm the pref cache and both pools
		do()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do()
	}
}

// BenchmarkMetricsObserve is the per-request price of the
// observability layer's hot call: one histogram observation — a
// bucket index computation and two atomic adds — which the
// instrumented handler pays once per request. Must stay allocation-
// free and a few nanoseconds, or it has no business on the wire path.
func BenchmarkMetricsObserve(b *testing.B) {
	var h metrics.Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}
