package groupform

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"groupform/internal/synth"
)

// TestPipelineEndToEnd exercises the full production path a
// recommender-system operator would run: generate (stand-in for
// collect) sparse explicit feedback, trim low-activity users/items,
// persist and reload it, train a predictor, densify onto the rating
// lattice, form groups under every semantics/aggregation pair, and
// evaluate the groupings.
func TestPipelineEndToEnd(t *testing.T) {
	raw, err := Generate(SynthConfig{
		Users: 120, Items: 60, Clusters: 10, RatingsPerUser: 25,
		ExploreFrac: 0.2, NoiseRate: 0.1, OrderCorrelation: 0.3, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-processing: the paper trims Yahoo! Music to >= 20 ratings
	// per user and >= 20 per item; scale the thresholds down.
	trimmed := raw.Trim(10, 3)
	if trimmed.NumUsers() == 0 {
		t.Fatal("trim removed everyone")
	}
	for _, u := range trimmed.Users() {
		if len(trimmed.UserRatings(u)) < 10 {
			t.Fatalf("user %d under threshold after trim", u)
		}
	}

	// Persistence round trip.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trimmed); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadCSV(&buf, DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.NumRatings() != trimmed.NumRatings() {
		t.Fatalf("round trip lost ratings: %d vs %d", reloaded.NumRatings(), trimmed.NumRatings())
	}

	// Prediction layer.
	pred, err := NewUserKNN(reloaded, 10)
	if err != nil {
		t.Fatal(err)
	}
	full, err := DensifyQuantized(reloaded, pred, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumRatings() != full.NumUsers()*full.NumItems() {
		t.Fatal("densify incomplete")
	}

	// Formation under all six algorithm variants.
	for _, sem := range []Semantics{LM, AV} {
		for _, agg := range []Aggregation{Max, Min, Sum} {
			cfg := Config{K: 5, L: 8, Semantics: sem, Aggregation: agg}
			res, err := Form(full, cfg)
			if err != nil {
				t.Fatalf("%v-%v: %v", sem, agg, err)
			}
			if len(res.Groups) == 0 || len(res.Groups) > 8 {
				t.Fatalf("%v-%v: %d groups", sem, agg, len(res.Groups))
			}
			covered := 0
			total := 0.0
			for _, g := range res.Groups {
				covered += g.Size()
				total += g.Satisfaction
			}
			if covered != full.NumUsers() {
				t.Fatalf("%v-%v: covered %d of %d users", sem, agg, covered, full.NumUsers())
			}
			if math.Abs(total-res.Objective) > 1e-9 {
				t.Fatalf("%v-%v: objective mismatch", sem, agg)
			}

			// Evaluation metrics all work on the result.
			if _, err := AvgGroupSatisfaction(res); err != nil {
				t.Fatal(err)
			}
			if _, err := AvgGroupSatisfactionPerMember(res); err != nil {
				t.Fatal(err)
			}
			if _, err := GroupSizeSummary(res); err != nil {
				t.Fatal(err)
			}
			sat, err := PerUserSatisfaction(full, res, 0)
			if err != nil || len(sat) != full.NumUsers() {
				t.Fatalf("per-user satisfaction: %v (%d entries)", err, len(sat))
			}
			ndcg, err := MeanNDCG(full, res, 0)
			if err != nil || ndcg <= 0 || ndcg > 1+1e-9 {
				t.Fatalf("NDCG = %v, err %v", ndcg, err)
			}
		}
	}
}

// TestPipelineComparesAlgorithms runs greedy, baseline and the local
// search on the same densified instance and checks the expected
// dominance ordering of the objective.
func TestPipelineComparesAlgorithms(t *testing.T) {
	ds, err := synth.Generate(synth.Config{
		Users: 100, Items: 40, Clusters: 12, NoiseRate: 0.02, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 4, L: 8, Semantics: LM, Aggregation: Min}
	grd, err := Form(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := FormLocalSearch(ds, cfg, LSOptions{Iterations: 3000, Anneal: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := FormBaseline(ds, BaselineConfig{Config: cfg, Method: VectorKMeans, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Objective < grd.Objective {
		t.Errorf("local search %v below its greedy seed %v", ls.Objective, grd.Objective)
	}
	if grd.Objective < base.Objective {
		t.Errorf("GRD %v below clustering baseline %v on clustered data", grd.Objective, base.Objective)
	}
}

// serverGroup mirrors the serving API's group JSON for the e2e test.
type serverGroup struct {
	Members      []UserID  `json:"members"`
	Items        []ItemID  `json:"items"`
	ItemScores   []float64 `json:"item_scores"`
	Satisfaction float64   `json:"satisfaction"`
	Merged       bool      `json:"merged,omitempty"`
}

// serverResult mirrors the serving API's /form and /solve response.
type serverResult struct {
	Dataset   string        `json:"dataset"`
	Algorithm string        `json:"algorithm"`
	Objective float64       `json:"objective"`
	Buckets   int           `json:"buckets"`
	Groups    []serverGroup `json:"groups"`
}

// postE2E posts one JSON body and decodes the response into out.
func postE2E(t *testing.T, base, path string, body []byte, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s: status %d (want %d): %s", path, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s: decode %s: %v", path, raw, err)
		}
	}
}

// checkCoverage asserts a serving result partitions all n users.
func checkCoverage(t *testing.T, where string, res serverResult, n int) {
	t.Helper()
	covered := 0
	total := 0.0
	for _, g := range res.Groups {
		covered += len(g.Members)
		total += g.Satisfaction
	}
	if covered != n {
		t.Fatalf("%s: covered %d of %d users", where, covered, n)
	}
	if math.Abs(total-res.Objective) > 1e-9 {
		t.Fatalf("%s: objective %v != summed satisfaction %v", where, res.Objective, total)
	}
}

// TestServerEndToEnd is the serving tier's smoke pipeline over real
// HTTP: generate data (the datagen path), upload it to a fresh server
// on a random port, query /form, /form/batch and /solve?algo=ls,
// hot-swap the dataset through a binary re-upload, and query again —
// every answer checked against the in-process library as oracle.
func TestServerEndToEnd(t *testing.T) {
	// datagen equivalent: a clustered synthetic dataset, as CSV bytes.
	ds1, err := Generate(SynthConfig{
		Users: 150, Items: 50, Clusters: 10, RatingsPerUser: 25, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, ds1); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(ServerConfig{MaxInflight: 32})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Boot state: healthy, zero datasets, solves 404.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz before upload: %d", resp.StatusCode)
	}
	formBody := []byte(`{"dataset":"e2e","k":4,"l":6,"semantics":"lm","agg":"min"}`)
	postE2E(t, ts.URL, "/form", formBody, http.StatusNotFound, nil)

	// Upload the CSV (201 created).
	var up struct {
		Users    int  `json:"users"`
		Ratings  int  `json:"ratings"`
		Replaced bool `json:"replaced"`
	}
	postE2E(t, ts.URL, "/datasets/e2e", csv.Bytes(), http.StatusCreated, &up)
	if up.Users != ds1.NumUsers() || up.Ratings != ds1.NumRatings() || up.Replaced {
		t.Fatalf("upload stats %+v vs dataset %d users %d ratings", up, ds1.NumUsers(), ds1.NumRatings())
	}

	// /form matches the library oracle.
	cfg := Config{K: 4, L: 6, Semantics: LM, Aggregation: Min}
	eng1, err := NewEngine(ds1)
	if err != nil {
		t.Fatal(err)
	}
	want1, err := eng1.Form(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got serverResult
	postE2E(t, ts.URL, "/form", formBody, http.StatusOK, &got)
	checkCoverage(t, "/form", got, ds1.NumUsers())
	if got.Objective != want1.Objective || len(got.Groups) != len(want1.Groups) || got.Algorithm != want1.Algorithm {
		t.Fatalf("/form diverges from oracle: got (%v, %d, %s), want (%v, %d, %s)",
			got.Objective, len(got.Groups), got.Algorithm, want1.Objective, len(want1.Groups), want1.Algorithm)
	}

	// /form/batch: every item covered and consistent.
	var batch struct {
		Results []struct {
			Result *serverResult   `json:"result"`
			Error  *map[string]any `json:"error"`
		} `json:"results"`
	}
	batchBody := []byte(`{"dataset":"e2e","requests":[
		{"k":4,"l":6,"semantics":"lm","agg":"min"},
		{"k":3,"l":5,"semantics":"av","agg":"sum"}]}`)
	postE2E(t, ts.URL, "/form/batch", batchBody, http.StatusOK, &batch)
	if len(batch.Results) != 2 {
		t.Fatalf("batch returned %d results", len(batch.Results))
	}
	for i, item := range batch.Results {
		if item.Result == nil {
			t.Fatalf("batch item %d errored: %v", i, item.Error)
		}
		checkCoverage(t, fmt.Sprintf("batch[%d]", i), *item.Result, ds1.NumUsers())
	}
	if batch.Results[0].Result.Objective != want1.Objective {
		t.Fatal("batch item 0 diverges from the /form oracle")
	}

	// /solve?algo=ls at least matches its greedy seed.
	var ls serverResult
	postE2E(t, ts.URL, "/solve?algo=ls", []byte(`{"dataset":"e2e","k":4,"l":6,"semantics":"lm","agg":"min","seed":7}`),
		http.StatusOK, &ls)
	checkCoverage(t, "/solve", ls, ds1.NumUsers())
	if ls.Objective < want1.Objective-1e-9 {
		t.Fatalf("local search %v below its greedy seed %v", ls.Objective, want1.Objective)
	}

	// Hot-swap: a different dataset, uploaded in binary this time.
	ds2, err := Generate(SynthConfig{
		Users: 120, Items: 40, Clusters: 8, RatingsPerUser: 20, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := WriteBinary(&bin, ds2); err != nil {
		t.Fatal(err)
	}
	postE2E(t, ts.URL, "/datasets/e2e", bin.Bytes(), http.StatusOK, &up)
	if !up.Replaced || up.Users != ds2.NumUsers() {
		t.Fatalf("hot-swap upload stats %+v", up)
	}

	// /form now answers from the swapped engine.
	eng2, err := NewEngine(ds2)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := eng2.Form(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	postE2E(t, ts.URL, "/form", formBody, http.StatusOK, &got)
	checkCoverage(t, "/form after swap", got, ds2.NumUsers())
	if got.Objective != want2.Objective || len(got.Groups) != len(want2.Groups) {
		t.Fatalf("post-swap /form diverges from oracle on ds2: got (%v, %d), want (%v, %d)",
			got.Objective, len(got.Groups), want2.Objective, len(want2.Groups))
	}

	// Health reflects the loaded dataset.
	var health struct {
		Status   string   `json:"status"`
		Datasets []string `json:"datasets"`
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || len(health.Datasets) != 1 || health.Datasets[0] != "e2e" {
		t.Fatalf("healthz = %s", raw)
	}
}

// TestWeightedFormationThroughFacade checks the user-weights
// extension end to end via the public API.
func TestWeightedFormationThroughFacade(t *testing.T) {
	ds, err := FromDense(DefaultScale, [][]float64{
		{5, 1}, {1, 5}, {1, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Form(ds, Config{
		K: 1, L: 1, Semantics: AV, Aggregation: Min,
		UserWeights: map[UserID]float64{0: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].Items[0] != 0 {
		t.Errorf("weighted AV should favor the heavy user's item, got %d", res.Groups[0].Items[0])
	}
}
