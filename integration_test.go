package groupform

import (
	"bytes"
	"math"
	"testing"

	"groupform/internal/synth"
)

// TestPipelineEndToEnd exercises the full production path a
// recommender-system operator would run: generate (stand-in for
// collect) sparse explicit feedback, trim low-activity users/items,
// persist and reload it, train a predictor, densify onto the rating
// lattice, form groups under every semantics/aggregation pair, and
// evaluate the groupings.
func TestPipelineEndToEnd(t *testing.T) {
	raw, err := Generate(SynthConfig{
		Users: 120, Items: 60, Clusters: 10, RatingsPerUser: 25,
		ExploreFrac: 0.2, NoiseRate: 0.1, OrderCorrelation: 0.3, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-processing: the paper trims Yahoo! Music to >= 20 ratings
	// per user and >= 20 per item; scale the thresholds down.
	trimmed := raw.Trim(10, 3)
	if trimmed.NumUsers() == 0 {
		t.Fatal("trim removed everyone")
	}
	for _, u := range trimmed.Users() {
		if len(trimmed.UserRatings(u)) < 10 {
			t.Fatalf("user %d under threshold after trim", u)
		}
	}

	// Persistence round trip.
	var buf bytes.Buffer
	if err := WriteCSV(&buf, trimmed); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadCSV(&buf, DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.NumRatings() != trimmed.NumRatings() {
		t.Fatalf("round trip lost ratings: %d vs %d", reloaded.NumRatings(), trimmed.NumRatings())
	}

	// Prediction layer.
	pred, err := NewUserKNN(reloaded, 10)
	if err != nil {
		t.Fatal(err)
	}
	full, err := DensifyQuantized(reloaded, pred, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumRatings() != full.NumUsers()*full.NumItems() {
		t.Fatal("densify incomplete")
	}

	// Formation under all six algorithm variants.
	for _, sem := range []Semantics{LM, AV} {
		for _, agg := range []Aggregation{Max, Min, Sum} {
			cfg := Config{K: 5, L: 8, Semantics: sem, Aggregation: agg}
			res, err := Form(full, cfg)
			if err != nil {
				t.Fatalf("%v-%v: %v", sem, agg, err)
			}
			if len(res.Groups) == 0 || len(res.Groups) > 8 {
				t.Fatalf("%v-%v: %d groups", sem, agg, len(res.Groups))
			}
			covered := 0
			total := 0.0
			for _, g := range res.Groups {
				covered += g.Size()
				total += g.Satisfaction
			}
			if covered != full.NumUsers() {
				t.Fatalf("%v-%v: covered %d of %d users", sem, agg, covered, full.NumUsers())
			}
			if math.Abs(total-res.Objective) > 1e-9 {
				t.Fatalf("%v-%v: objective mismatch", sem, agg)
			}

			// Evaluation metrics all work on the result.
			if _, err := AvgGroupSatisfaction(res); err != nil {
				t.Fatal(err)
			}
			if _, err := AvgGroupSatisfactionPerMember(res); err != nil {
				t.Fatal(err)
			}
			if _, err := GroupSizeSummary(res); err != nil {
				t.Fatal(err)
			}
			sat, err := PerUserSatisfaction(full, res, 0)
			if err != nil || len(sat) != full.NumUsers() {
				t.Fatalf("per-user satisfaction: %v (%d entries)", err, len(sat))
			}
			ndcg, err := MeanNDCG(full, res, 0)
			if err != nil || ndcg <= 0 || ndcg > 1+1e-9 {
				t.Fatalf("NDCG = %v, err %v", ndcg, err)
			}
		}
	}
}

// TestPipelineComparesAlgorithms runs greedy, baseline and the local
// search on the same densified instance and checks the expected
// dominance ordering of the objective.
func TestPipelineComparesAlgorithms(t *testing.T) {
	ds, err := synth.Generate(synth.Config{
		Users: 100, Items: 40, Clusters: 12, NoiseRate: 0.02, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 4, L: 8, Semantics: LM, Aggregation: Min}
	grd, err := Form(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := FormLocalSearch(ds, cfg, LSOptions{Iterations: 3000, Anneal: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := FormBaseline(ds, BaselineConfig{Config: cfg, Method: VectorKMeans, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Objective < grd.Objective {
		t.Errorf("local search %v below its greedy seed %v", ls.Objective, grd.Objective)
	}
	if grd.Objective < base.Objective {
		t.Errorf("GRD %v below clustering baseline %v on clustered data", grd.Objective, base.Objective)
	}
}

// TestWeightedFormationThroughFacade checks the user-weights
// extension end to end via the public API.
func TestWeightedFormationThroughFacade(t *testing.T) {
	ds, err := FromDense(DefaultScale, [][]float64{
		{5, 1}, {1, 5}, {1, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Form(ds, Config{
		K: 1, L: 1, Semantics: AV, Aggregation: Min,
		UserWeights: map[UserID]float64{0: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups[0].Items[0] != 0 {
		t.Errorf("weighted AV should favor the heavy user's item, got %d", res.Groups[0].Items[0])
	}
}
