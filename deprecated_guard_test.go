package groupform

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// deprecatedFacadeFuncs are the legacy one-shot entry points kept
// only for external compatibility. First-party code — the commands,
// the examples (living documentation) and every internal package —
// must use the Engine / registry API instead; this guard keeps new
// call sites from creeping back in. Facade tests still exercise the
// wrappers on purpose (that is their compatibility contract), so the
// module root is not scanned.
var deprecatedFacadeFuncs = map[string]bool{
	"Form":               true,
	"FormBaseline":       true,
	"FormExact":          true,
	"FormLocalSearch":    true,
	"FormBranchAndBound": true,
	"SolveIP":            true,
}

func TestNoDeprecatedWrapperCalls(t *testing.T) {
	fset := token.NewFileSet()
	for _, dir := range []string{"cmd", "examples", "internal"} {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			// Find the local name the groupform facade is imported
			// under, if at all.
			facade := ""
			for _, imp := range file.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				if p != "groupform" {
					continue
				}
				facade = "groupform"
				if imp.Name != nil {
					facade = imp.Name.Name
				}
			}
			if facade == "" || facade == "_" {
				return nil
			}
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != facade {
					return true
				}
				if deprecatedFacadeFuncs[sel.Sel.Name] {
					t.Errorf("%s: calls deprecated groupform.%s — use NewSolver/Engine instead",
						fset.Position(sel.Pos()), sel.Sel.Name)
				}
				return true
			})
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
	}
}
