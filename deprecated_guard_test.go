package groupform

import (
	"testing"

	"groupform/internal/analysis"
)

// TestNoDeprecatedWrapperCalls is a thin wrapper over the nodeprecated
// analyzer in internal/analysis (also run by `go run ./cmd/gfvet ./...`
// and in CI). The rule bans the legacy one-shot facade wrappers — Form,
// FormBaseline, FormExact, FormLocalSearch, FormBranchAndBound, SolveIP
// — from first-party code: the commands, the examples (living
// documentation) and every internal package must use the Engine /
// registry API instead. Facade tests still exercise the wrappers on
// purpose (that is their compatibility contract), so the module root
// itself is exempt; the analyzer gates on the import path. Unlike the
// bespoke AST walk this replaces, the check is type-resolved — aliased
// or dot-imported facade references cannot slip past a textual match.
func TestNoDeprecatedWrapperCalls(t *testing.T) {
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Load("./cmd/...", "./examples/...", "./internal/...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{analysis.NoDeprecated}, pkgs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s", loader.Fset.Position(d.Pos), d.Message)
	}
}
