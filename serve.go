package groupform

import (
	"groupform/internal/server"
)

// Server is the HTTP serving layer: a named registry of Engines with
// atomic hot-swap (POST /datasets/{name}), pooled zero-alloc
// formation (POST /form — JSON, or the zero-copy binary wire format
// negotiated per direction via application/x-groupform-binary; POST
// /form/batch), any registry algorithm over HTTP (POST /solve),
// health and listing endpoints, Prometheus text metrics (GET
// /metrics: per-endpoint latency histograms, per-dataset counters,
// scratch-pool gauges), per-request cancellation (client disconnect
// and timeout_ms), and max-inflight backpressure — a fixed cap, or
// adaptive against a TargetP99 SLO. Mount it anywhere an
// http.Handler goes:
//
//	srv := groupform.NewServer(groupform.ServerConfig{MaxInflight: 64})
//	err := srv.AddDataset("main", ds)
//	http.ListenAndServe(":8080", srv)
//
// cmd/groupformd wraps this as a daemon; see docs/API.md ("The
// serving layer", "The binary wire format") for the endpoint,
// wire-format and error-code contract.
type Server = server.Server

// ServerConfig parameterizes a Server; the zero value serves with no
// inflight cap, no default deadline, serial solves and a 1 GiB
// upload cap. Setting TargetP99 turns the inflight cap adaptive:
// the server walks it to hold the observed full-handler p99 at the
// SLO (MaxInflight, if also set, seeds the walk).
type ServerConfig = server.Config

// NewServer builds a Server ready to mount. Load datasets with
// AddDataset at boot or POST /datasets/{name} at runtime.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }
