package groupform

import (
	"groupform/internal/server"
)

// Server is the HTTP/JSON serving layer: a named registry of Engines
// with atomic hot-swap (POST /datasets/{name}), pooled zero-alloc
// formation (POST /form, POST /form/batch), any registry algorithm
// over HTTP (POST /solve), health and listing endpoints, per-request
// cancellation (client disconnect and timeout_ms), and max-inflight
// backpressure. Mount it anywhere an http.Handler goes:
//
//	srv := groupform.NewServer(groupform.ServerConfig{MaxInflight: 64})
//	err := srv.AddDataset("main", ds)
//	http.ListenAndServe(":8080", srv)
//
// cmd/groupformd wraps this as a daemon; see docs/API.md ("The
// serving layer") for the endpoint and error-code contract.
type Server = server.Server

// ServerConfig parameterizes a Server; the zero value serves with no
// inflight cap, no default deadline, serial solves and a 1 GiB
// upload cap.
type ServerConfig = server.Config

// NewServer builds a Server ready to mount. Load datasets with
// AddDataset at boot or POST /datasets/{name} at runtime.
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }
