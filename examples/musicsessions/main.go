// Music sessions: group listeners for shared playlists (the FlyTrap /
// Yahoo! Music scenario). Listeners rate only some songs, so a
// collaborative-filtering predictor first completes the matrix — the
// paper's assumed pre-processing — and groups are then formed under
// Aggregate Voting, which maximizes the summed enthusiasm of the room
// for each track.
//
// Run with: go run ./examples/musicsessions
package main

import (
	"context"
	"fmt"
	"log"

	"groupform"
)

func main() {
	// Sparse explicit feedback: 300 listeners, 120 songs, each
	// listener rated ~30 songs.
	sparse, err := groupform.Generate(groupform.SynthConfig{
		Users:            300,
		Items:            120,
		Clusters:         12,
		RatingsPerUser:   30,
		NoiseRate:        0.03,
		OrderCorrelation: 0.3,
		Seed:             42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explicit feedback: %s\n", sparse.Describe())

	// Complete the matrix with an item-kNN predictor (try
	// NewUserKNN or NewMF for the other models). Predictions are
	// rounded back to whole stars: the greedy bucketization matches
	// users on exact top-k sequences and scores, so keeping the
	// matrix on the discrete rating lattice is essential — raw
	// real-valued predictions would make every listener's key unique.
	predictor, err := groupform.NewItemKNN(sparse, 15)
	if err != nil {
		log.Fatal(err)
	}
	full, err := groupform.DensifyQuantized(sparse, predictor, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after rating prediction: %s\n", full.Describe())

	// Ten listening rooms, each playing a top-5 playlist chosen by
	// aggregate voting; satisfaction is judged by the k-th (weakest)
	// track, the paper's Figure-3 setting (AV with Min aggregation).
	cfg := groupform.Config{
		K:           5,
		L:           10,
		Semantics:   groupform.AV,
		Aggregation: groupform.Min,
	}
	// One Engine serves both algorithms over the completed matrix.
	eng, err := groupform.NewEngine(full)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	grd, err := eng.Form(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	base, err := eng.Solve(ctx, "baseline-kendall", cfg, groupform.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-18s objective=%9.0f avg-satisfaction=%7.1f\n",
		grd.Algorithm, grd.Objective, must(groupform.AvgGroupSatisfaction(grd)))
	fmt.Printf("%-18s objective=%9.0f avg-satisfaction=%7.1f\n",
		base.Algorithm, base.Objective, must(groupform.AvgGroupSatisfaction(base)))

	fmt.Println("\nrooms formed by", grd.Algorithm, ":")
	for i, g := range grd.Groups {
		fmt.Printf("  room %2d: %3d listeners, playlist head %v, AV score of 1st track %.0f\n",
			i+1, g.Size(), g.Items[:3], g.ItemScores[0])
	}

	// NDCG tells us how close each listener's playlist is to their
	// personal ideal (Section 6's user-level weighting).
	ndcgGRD := must(groupform.MeanNDCG(full, grd, 0))
	ndcgBase := must(groupform.MeanNDCG(full, base, 0))
	fmt.Printf("\nmean NDCG: %s %.3f vs %s %.3f\n",
		grd.Algorithm, ndcgGRD, base.Algorithm, ndcgBase)
}

func must(v float64, err error) float64 {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
