// Travel planner: the paper's motivating application (Section 1).
// Several hundred travelers register 1-5 preferences over a city's
// points of interest; the agency supports a fixed number of tours,
// each visiting 5 POIs. Groups are formed so that travelers are as
// satisfied as possible with the tour recommended to their group
// under Least Misery semantics (nobody on the bus hates a stop).
//
// Run with: go run ./examples/travelplanner
package main

import (
	"context"
	"fmt"
	"log"

	"groupform"
)

const (
	travelers = 400
	pois      = 60
	tours     = 25 // "a travel agency may decide to support, say 25 different user groups"
	planLen   = 5  // each plan consists of 5-10 POIs
)

func main() {
	// Registered travelers' preferences: synthetic, with taste
	// communities (families, museum-goers, foodies, ...) and a
	// popularity bias shared across communities.
	ds, err := groupform.Generate(groupform.SynthConfig{
		Users:            travelers,
		Items:            pois,
		Clusters:         40,
		RatingsPerUser:   pois, // everyone scored the whole brochure
		NoiseRate:        0.05,
		OrderCorrelation: 0.4,
		Seed:             2015,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d travelers over %d POIs\n", ds.NumUsers(), ds.NumItems())

	// The agency serves many itineraries from one preference table,
	// so bind the dataset to an Engine and solve against that.
	eng, err := groupform.NewEngine(ds)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	cfg := groupform.Config{
		K:           planLen,
		L:           tours,
		Semantics:   groupform.LM,
		Aggregation: groupform.Min, // the worst stop on the tour matters
	}
	res, err := eng.Form(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s formed %d tour groups (objective %.0f, %d intermediate buckets)\n",
		res.Algorithm, len(res.Groups), res.Objective, res.Buckets)
	for i, g := range res.Groups {
		if i >= 5 {
			fmt.Printf("  ... and %d more groups\n", len(res.Groups)-i)
			break
		}
		fmt.Printf("  tour %2d: %3d travelers, plan %v, LM score of worst stop %.0f\n",
			i+1, g.Size(), g.Items, g.Satisfaction)
	}

	// How balanced are the buses?
	fp, err := groupform.GroupSizeSummary(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("group sizes: %s\n", fp)

	// And how happy is each traveler individually with their plan?
	sat, err := groupform.PerUserSatisfaction(ds, res, 0)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for _, s := range sat {
		sum += s
	}
	fmt.Printf("mean individual satisfaction with assigned plan: %.2f / %g\n",
		sum/float64(len(sat)), ds.Scale().Max)

	// Compare against ad-hoc formation (the clustering baseline the
	// paper adapts from prior work) — the same Engine runs any
	// registered solver.
	base, err := eng.Solve(ctx, "baseline-kmeans", cfg, groupform.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering baseline objective: %.0f (GRD improvement %+.0f)\n",
		base.Objective, res.Objective-base.Objective)
}
