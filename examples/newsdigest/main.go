// News digest: an online news agency segments a large reader base
// into hundreds of groups and serves each segment a top-10 digest
// (the paper's "an online news agency may create hundreds of segments
// of their large reader-base ... to serve the top-10 news"). This
// example runs at a scale where only the O(nk + l log n) greedy is
// practical, and demonstrates the Section 6 weighted-sum extension:
// stories near the top of the digest count more.
//
// Run with: go run ./examples/newsdigest
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"groupform"
)

// countFullySatisfied counts readers whose segment digest is exactly
// their personal top-k list.
func countFullySatisfied(ds *groupform.Dataset, res *groupform.Result) (int, error) {
	sc := groupform.Scorer{DS: ds}
	count := 0
	for _, g := range res.Groups {
		for _, u := range g.Members {
			own, _, err := sc.TopK(groupform.LM, []groupform.UserID{u}, len(g.Items))
			if err != nil {
				return 0, err
			}
			match := true
			for j := range own {
				if own[j] != g.Items[j] {
					match = false
					break
				}
			}
			if match {
				count++
			}
		}
	}
	return count, nil
}

func main() {
	const (
		readers  = 50000
		stories  = 2000
		segments = 500
		digest   = 10
	)
	start := time.Now()
	ds, err := groupform.Generate(groupform.SynthConfig{
		Users:            readers,
		Items:            stories,
		Clusters:         400,
		RatingsPerUser:   40, // quantile-bucketed engagement scores
		ExploreFrac:      0,
		NoiseRate:        0,
		OrderCorrelation: 0.6, // breaking news interests everyone
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reader base: %s (generated in %v)\n", ds.Describe(), time.Since(start).Round(time.Millisecond))

	// Weighted Sum: the j-th story in the digest carries weight
	// 1/log2(j+2), so leading with the right story matters.
	cfg := groupform.Config{
		K:           digest,
		L:           segments,
		Semantics:   groupform.LM,
		Aggregation: groupform.WeightedSumLog,
	}
	// A news backend re-segments the same reader base many times a
	// day (fresh budgets, fresh weightings); the Engine caches the
	// per-reader preference lists so only the first run pays for
	// them.
	eng, err := groupform.NewEngine(ds)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	start = time.Now()
	res, err := eng.Form(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	formDur := time.Since(start)

	fmt.Printf("%s: %d segments from %d intermediate buckets in %v (objective %.0f)\n",
		res.Algorithm, len(res.Groups), res.Buckets, formDur.Round(time.Millisecond), res.Objective)

	fp, err := groupform.GroupSizeSummary(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segment sizes: %s\n", fp)

	// With a segment budget above the number of distinct interest
	// profiles (buckets), every reader lands in a segment whose
	// digest exactly matches their own top stories — the
	// fully-satisfied regime Section 6 of the paper points out for
	// the first l-1 groups.
	full, err := countFullySatisfied(ds, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("readers whose digest equals their personal top-%d: %d of %d\n", digest, full, readers)

	// Shrinking the budget below the profile count forces a residual
	// (merged) segment that absorbs leftover readers — the greedy's
	// l-th group and the source of its bounded error. This re-run
	// skips the preference-list phase entirely: same K, same engine.
	tight := cfg
	tight.L = 250
	start = time.Now()
	res2, err := eng.Form(ctx, tight)
	if err != nil {
		log.Fatal(err)
	}
	stats := eng.Stats()
	fmt.Printf("re-segmented at L=%d in %v (engine cache: %d build, %d hit)\n",
		tight.L, time.Since(start).Round(time.Millisecond), stats.PrefBuilds, stats.PrefHits)
	var merged *groupform.Group
	for i := range res2.Groups {
		if res2.Groups[i].Merged {
			merged = &res2.Groups[i]
		}
	}
	if merged != nil {
		fmt.Printf("with L=%d the residual segment holds %d readers and its digest leads with story %v\n",
			tight.L, merged.Size(), merged.Items[0])
	}
}
