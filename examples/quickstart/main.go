// Quickstart: form groups over the paper's running example (Table 1)
// and compare the greedy result with the true optimum — all through
// the Engine, which binds the dataset once and then runs any solver
// in the registry against it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"groupform"
)

func main() {
	// The user-item preference ratings of the paper's Example 1:
	// rows are users u1..u6, columns are items i1..i3.
	ds, err := groupform.FromDense(groupform.DefaultScale, [][]float64{
		{1, 4, 3}, // u1
		{2, 3, 5}, // u2
		{2, 5, 1}, // u3
		{2, 5, 1}, // u4
		{3, 1, 1}, // u5
		{1, 2, 5}, // u6
	})
	if err != nil {
		log.Fatal(err)
	}

	// Bind the dataset once; the Engine caches the per-dataset
	// preprocessing across every solve below.
	eng, err := groupform.NewEngine(ds)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Partition into at most 3 groups; recommend 1 item per group
	// under Least Misery semantics.
	cfg := groupform.Config{
		K:           1,
		L:           3,
		Semantics:   groupform.LM,
		Aggregation: groupform.Min,
	}

	grd, err := eng.Form(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: objective = %.0f\n", grd.Algorithm, grd.Objective)
	for i, g := range grd.Groups {
		fmt.Printf("  group %d: users %v -> item i%d (LM score %.0f)\n",
			i+1, g.Members, g.Items[0]+1, g.Satisfaction)
	}

	// The instance is tiny, so the exact optimum is computable: the
	// paper reports 12 for this example versus the greedy's 11 —
	// within the theorem's rmax = 5 absolute-error bound.
	exact, err := eng.Solve(ctx, "exact", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimum = %.0f (greedy error %.0f <= rmax %g)\n",
		exact.Objective, exact.Objective-grd.Objective, ds.Scale().Max)

	// The Appendix-A integer program (k = 1) agrees; like every
	// algorithm it is just another name in the registry.
	ip, err := eng.Solve(ctx, "ip", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integer program optimum = %.0f\n", ip.Objective)
}
