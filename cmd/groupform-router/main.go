// Command groupform-router is the stateless scatter-gather front of
// a sharded groupform deployment: S groupformd processes each serve
// one contiguous user slice (-shard i/S), and the router answers the
// single-node POST /form contract by fanning the request out to
// every shard (POST /shard/buckets), merging the candidate buckets
// through the solver's own merge kernel, and finalizing with group
// scores reassembled from per-shard partial stats (POST
// /shard/scores). Under LM semantics the routed answer is
// byte-identical to one groupformd over the whole dataset; under AV
// it matches up to floating-point summation order (byte-identical on
// integer rating scales). See docs/ARCHITECTURE.md, "The
// scatter-gather tier".
//
// Usage:
//
//	groupform-router -listen :8090 \
//	    -shard http://10.0.0.1:8080 -shard http://10.0.0.2:8080 \
//	    [-shard-timeout 30s] [-retries 1] [-timeout 0] \
//	    [-drain-timeout 30s]
//
// -shard flags are ordered: the first names shard 0, the second
// shard 1, and so on; the order must match each daemon's -shard i/S
// flag (GET /healthz cross-checks and reports mismatches). -timeout
// is the routed-solve ceiling a request's timeout_ms clamps to;
// -shard-timeout and -retries govern each upstream call. Requests
// that set "anytime": true degrade gracefully when shards are down:
// as long as one shard answers, the response is 200 with
// degraded:true and a quality certificate covering the responding
// sub-population; without anytime, any shard loss is a 503
// shard_unavailable. SIGINT/SIGTERM drain like groupformd.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"groupform/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "groupform-router:", err)
		os.Exit(1)
	}
}

// shardURLFlags collects the ordered, repeatable -shard URL values.
type shardURLFlags []string

func (s *shardURLFlags) String() string { return strings.Join(*s, ",") }
func (s *shardURLFlags) Set(v string) error {
	*s = append(*s, strings.TrimRight(v, "/"))
	return nil
}

// shutdown carries the termination signal; package-level so tests
// can stop a running router without delivering a real signal.
var shutdown = make(chan os.Signal, 1)

const defaultDrainTimeout = 30 * time.Second

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("groupform-router", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var shards shardURLFlags
	fs.Var(&shards, "shard", "base URL of the next shard, in shard order (repeatable; first flag = shard 0)")
	var (
		listen       = fs.String("listen", ":8090", "address to listen on (host:port; :0 picks a free port)")
		shardTimeout = fs.Duration("shard-timeout", 30*time.Second, "per-upstream-call deadline")
		retries      = fs.Int("retries", 1, "retries per failed upstream call (transport errors and 5xx only)")
		timeout      = fs.Duration("timeout", 0, "routed-solve ceiling; requests' timeout_ms clamps to it (0 = unbounded)")
		drainFlag    = fs.Duration("drain-timeout", defaultDrainTimeout, "maximum time to drain in-flight requests on SIGINT/SIGTERM (0 = 30s default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *drainFlag < 0 {
		return fmt.Errorf("-drain-timeout must be non-negative, got %v", *drainFlag)
	}
	drain := *drainFlag
	if drain == 0 {
		drain = defaultDrainTimeout
	}

	rt, err := shard.NewRouter(shard.Config{
		Shards:       shards,
		ShardTimeout: *shardTimeout,
		Retries:      *retries,
		Timeout:      *timeout,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "groupform-router: routing %d shards\n", len(shards))

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "groupform-router: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: rt}
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(shutdown)
	done := make(chan error, 1)
	go func() {
		<-shutdown
		fmt.Fprintf(out, "groupform-router: draining timeout=%v\n", drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		done <- hs.Shutdown(ctx)
	}()
	if err := hs.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	if err := <-done; err != nil {
		fmt.Fprintf(out, "groupform-router: drain timeout after %v: %v\n", drain, err)
	}
	fmt.Fprintln(out, "groupform-router: drained, bye")
	return nil
}
