package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"groupform"
)

// syncBuffer lets the test read process output while it is written.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (http://\S+)`)

// waitListen polls a process's output for the bound-address line.
func waitListen(t *testing.T, out *syncBuffer, who string) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: no listen line within 15s: %s", who, out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// writeRatings materializes a small synthetic dataset as a CSV file.
// The synthetic generator rates on an integer 1..5 scale, so AV
// parity below is byte-exact, not just within float tolerance.
func writeRatings(t *testing.T) string {
	t.Helper()
	ds, err := groupform.Generate(groupform.SynthConfig{
		Users: 90, Items: 40, Clusters: 6, RatingsPerUser: 12, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ratings.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := groupform.WriteCSV(f, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

// buildBinary compiles one command of this module into dir.
func buildBinary(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// startProc launches a built binary, scrapes its listen line, and
// registers a kill-on-cleanup so a failing test never leaks daemons.
func startProc(t *testing.T, bin string, args ...string) (base string, out *syncBuffer, proc *exec.Cmd) {
	t.Helper()
	out = &syncBuffer{}
	proc = exec.Command(bin, args...)
	proc.Stdout = out
	proc.Stderr = out
	if err := proc.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		proc.Process.Kill()
		proc.Wait()
	})
	return waitListen(t, out, filepath.Base(bin)), out, proc
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func httpForm(t *testing.T, base, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/form", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s/form: %v", base, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// TestEndToEndMultiProcess is the full deployment rehearsal: three
// groupformd shard processes, one unsharded reference process, and
// the router binary in front, all real executables on real sockets.
// The routed answers must be byte-identical to the single node's.
func TestEndToEndMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process e2e in -short mode")
	}
	dir := t.TempDir()
	daemon := buildBinary(t, dir, "groupform/cmd/groupformd", "groupformd")
	router := buildBinary(t, dir, "groupform/cmd/groupform-router", "groupform-router")
	csv := writeRatings(t)

	const S = 3
	shardURLs := make([]string, S)
	for i := 0; i < S; i++ {
		base, out, _ := startProc(t, daemon,
			"-listen", "127.0.0.1:0", "-dataset", "ds="+csv,
			"-shard", fmt.Sprintf("%d/%d", i, S))
		if !strings.Contains(out.String(), fmt.Sprintf("serving shard %d/%d", i, S)) {
			t.Fatalf("shard %d missing role line: %s", i, out.String())
		}
		shardURLs[i] = base
	}
	single, _, _ := startProc(t, daemon, "-listen", "127.0.0.1:0", "-dataset", "ds="+csv)

	args := []string{"-listen", "127.0.0.1:0"}
	for _, u := range shardURLs {
		args = append(args, "-shard", u)
	}
	routed, rout, rproc := startProc(t, router, args...)

	// Health: the router cross-checks every shard's reported i/S.
	code, body := httpGet(t, routed+"/healthz")
	var health struct {
		Status string `json:"status"`
		Shards []struct {
			Status string `json:"status"`
			Shard  struct {
				Shard  int `json:"shard"`
				Shards int `json:"shards"`
			} `json:"shard"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(body, &health); err != nil || code != 200 || health.Status != "ok" {
		t.Fatalf("router healthz: %d %s (err %v)", code, body, err)
	}
	if len(health.Shards) != S {
		t.Fatalf("healthz shards = %d, want %d: %s", len(health.Shards), S, body)
	}
	for i, sh := range health.Shards {
		if sh.Status != "ok" || sh.Shard.Shard != i || sh.Shard.Shards != S {
			t.Fatalf("healthz shard %d = %+v: %s", i, sh, body)
		}
	}

	// Parity: routed answers are byte-identical to the single node,
	// across both semantics and both finalization branches.
	forms := []string{
		`{"dataset":"ds","k":4,"l":6,"semantics":"lm","agg":"max"}`,
		`{"dataset":"ds","k":3,"l":5,"semantics":"av","agg":"sum"}`,
		`{"dataset":"ds","k":6,"l":2,"semantics":"lm","agg":"min"}`,
		`{"dataset":"ds","k":2,"l":60,"semantics":"av","agg":"max"}`,
	}
	for _, form := range forms {
		wantCode, want := httpForm(t, single, form)
		gotCode, got := httpForm(t, routed, form)
		if wantCode != 200 || gotCode != 200 {
			t.Fatalf("form %s: single %d %s, routed %d %s", form, wantCode, want, gotCode, got)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("form %s: routed response diverges\nsingle: %s\nrouted: %s", form, want, got)
		}
	}

	// Observability: per-shard fan-out counters are on /metrics.
	code, scrape := httpGet(t, routed+"/metrics")
	if code != 200 {
		t.Fatalf("router metrics: %d %s", code, scrape)
	}
	for i := 0; i < S; i++ {
		if !strings.Contains(string(scrape), fmt.Sprintf(`groupform_router_shard_requests_total{shard="%d"} %d`, i, len(forms))) {
			t.Fatalf("metrics missing shard %d fan-out count:\n%s", i, scrape)
		}
	}
	if !strings.Contains(string(scrape), `groupform_requests_total{endpoint="form"} `+fmt.Sprint(len(forms))) {
		t.Fatalf("metrics missing form request count:\n%s", scrape)
	}

	// Drain: SIGTERM the router and require a clean, logged exit.
	if err := rproc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := rproc.Wait(); err != nil {
		t.Fatalf("router exit: %v (output: %s)", err, rout.String())
	}
	if !strings.Contains(rout.String(), "drained, bye") {
		t.Fatalf("router missing drain line: %s", rout.String())
	}
}

// TestRunServeAndShutdown drives run() in-process against a one-shard
// topology (the degenerate S=1 deployment) and exits through the
// package-level shutdown channel, mirroring groupformd's own test.
func TestRunServeAndShutdown(t *testing.T) {
	ds, err := groupform.Generate(groupform.SynthConfig{
		Users: 40, Items: 20, Clusters: 4, RatingsPerUser: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := groupform.NewServer(groupform.ServerConfig{Shard: 0, Shards: 1})
	if err := srv.AddDataset("ds", ds); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-shard", ts.URL}, out)
	}()
	base := waitListen(t, out, "router")

	form := `{"dataset":"ds","k":3,"l":4,"semantics":"lm","agg":"max"}`
	wantCode, want := httpForm(t, ts.URL, form)
	gotCode, got := httpForm(t, base, form)
	if wantCode != 200 || gotCode != 200 || !bytes.Equal(want, got) {
		t.Fatalf("S=1 parity: direct %d %s, routed %d %s", wantCode, want, gotCode, got)
	}

	shutdown <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("router did not drain within 15s")
	}
	if !strings.Contains(out.String(), "drained, bye") {
		t.Fatalf("missing drain line: %s", out.String())
	}
}

// TestBadFlags pins startup validation: a router with no shards, a
// non-HTTP shard URL, or a negative drain timeout must refuse to run.
func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-listen", "127.0.0.1:0"},
		{"-listen", "127.0.0.1:0", "-shard", "ftp://example.com"},
		{"-listen", "127.0.0.1:0", "-shard", "http://127.0.0.1:1", "-drain-timeout", "-5s"},
		{"-listen", "not-an-address", "-shard", "http://127.0.0.1:1"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
