// Command benchjson converts `go test -bench` text output into the
// structured JSON the CI perf-trajectory job uploads (BENCH_<n>.json).
//
// Usage:
//
//	go test -run '^$' -bench 'GRD|Engine|TopK' -benchmem -benchtime 1x . \
//	    | benchjson -out BENCH_3.json
//	benchjson -in bench.txt -out BENCH_3.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"groupform/internal/benchparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		in  = fs.String("in", "", "benchmark text input (default stdin)")
		out = fs.String("out", "", "JSON output path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := benchparse.Parse(r)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		return os.WriteFile(*out, data, 0o644)
	}
	_, err = stdout.Write(data)
	return err
}
