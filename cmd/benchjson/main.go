// Command benchjson converts `go test -bench` text output into the
// structured JSON the CI perf-trajectory job uploads (BENCH_<n>.json),
// and diffs two such files as the CI bench-regression guard.
//
// Usage:
//
//	go test -run '^$' -bench 'GRD|Engine|TopK' -benchmem -benchtime 1x . \
//	    | benchjson -out BENCH_4.json
//	benchjson -in bench.txt -out BENCH_4.json
//	benchjson -compare bench/BENCH_3.json BENCH_4.json
//
// In -compare mode the two positional arguments are the committed
// baseline and the fresh run; the exit status is 1 when any benchmark
// present in both regresses by more than -ns-threshold in ns/op
// (default 15%) or by any amount in allocs/op (allocation counts are
// deterministic, so the budget is zero).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"groupform/internal/benchparse"
)

// errRegression marks a guard failure (as opposed to a usage or I/O
// error); both exit 1, but tests distinguish them.
var errRegression = errors.New("benchmark regression")

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		in          = fs.String("in", "", "benchmark text input (default stdin)")
		out         = fs.String("out", "", "JSON output path (default stdout)")
		compare     = fs.Bool("compare", false, "compare two BENCH json files: -compare old.json new.json")
		nsThreshold = fs.Float64("ns-threshold", benchparse.DefaultNsThreshold, "relative ns/op regression budget in -compare mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two arguments: old.json new.json")
		}
		return runCompare(fs.Arg(0), fs.Arg(1), *nsThreshold, stdout)
	}
	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := benchparse.Parse(r)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		return os.WriteFile(*out, data, 0o644)
	}
	_, err = stdout.Write(data)
	return err
}

// runCompare loads the two reports, prints the delta table, and
// returns errRegression when the guard trips.
func runCompare(oldPath, newPath string, nsThreshold float64, stdout io.Writer) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	c := benchparse.Compare(oldRep, newRep, nsThreshold)
	if len(c.Deltas) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	c.WriteText(stdout)
	if regs := c.Regressions(); len(regs) > 0 {
		return fmt.Errorf("%w: %d of %d benchmarks regressed (>%g%% ns/op, or allocs/op beyond the max(1, 0.1%%) jitter slack) vs %s",
			errRegression, len(regs), len(c.Deltas), nsThreshold*100, oldPath)
	}
	fmt.Fprintf(stdout, "OK: %d benchmarks within budget vs %s\n", len(c.Deltas), oldPath)
	return nil
}

func loadReport(path string) (*benchparse.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &benchparse.Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return rep, nil
}
