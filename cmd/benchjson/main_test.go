package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"groupform/internal/benchparse"
)

const sample = `pkg: groupform
BenchmarkGRD/LM-MIN-8  5  1200 ns/op  64 B/op  2 allocs/op
PASS
`

func TestRunStdinStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep benchparse.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkGRD/LM-MIN" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunFiles(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	outPath := filepath.Join(dir, "BENCH.json")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-out", outPath}, nil, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchparse.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks[0].AllocsPerOp != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("want error for input without benchmark lines")
	}
}

const oldSample = `pkg: groupform
BenchmarkGRD/LM-MIN-8  5  1200 ns/op  64 B/op  2 allocs/op
PASS
`

const regressedSample = `pkg: groupform
BenchmarkGRD/LM-MIN-8  5  2400 ns/op  64 B/op  2 allocs/op
PASS
`

// writeJSON converts bench text to a BENCH json file via run itself.
func writeJSON(t *testing.T, dir, name, text string) string {
	t.Helper()
	in := filepath.Join(dir, name+".txt")
	out := filepath.Join(dir, name+".json")
	if err := os.WriteFile(in, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-out", out}, nil, nil); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCompareModeOK(t *testing.T) {
	dir := t.TempDir()
	oldJSON := writeJSON(t, dir, "old", oldSample)
	newJSON := writeJSON(t, dir, "new", sample)
	var out bytes.Buffer
	if err := run([]string{"-compare", oldJSON, newJSON}, nil, &out); err != nil {
		t.Fatalf("identical runs must pass the guard: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK:") {
		t.Fatalf("missing OK summary:\n%s", out.String())
	}
}

func TestCompareModeRegression(t *testing.T) {
	dir := t.TempDir()
	oldJSON := writeJSON(t, dir, "old", oldSample)
	newJSON := writeJSON(t, dir, "new", regressedSample)
	var out bytes.Buffer
	err := run([]string{"-compare", oldJSON, newJSON}, nil, &out)
	if err == nil {
		t.Fatalf("2x ns/op must trip the guard\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regress") {
		t.Fatalf("err = %v, want a regression message", err)
	}
	// A wider threshold admits the same delta.
	if err := run([]string{"-compare", "-ns-threshold", "1.5", oldJSON, newJSON}, nil, &bytes.Buffer{}); err != nil {
		t.Fatalf("threshold 150%% must pass: %v", err)
	}
}

func TestCompareModeUsage(t *testing.T) {
	if err := run([]string{"-compare", "only-one.json"}, nil, &bytes.Buffer{}); err == nil {
		t.Fatal("one argument must be a usage error")
	}
}
