package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"groupform/internal/benchparse"
)

const sample = `pkg: groupform
BenchmarkGRD/LM-MIN-8  5  1200 ns/op  64 B/op  2 allocs/op
PASS
`

func TestRunStdinStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep benchparse.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkGRD/LM-MIN" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunFiles(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	outPath := filepath.Join(dir, "BENCH.json")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-out", outPath}, nil, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchparse.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks[0].AllocsPerOp != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{}); err == nil {
		t.Fatal("want error for input without benchmark lines")
	}
}
