package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"groupform"
)

func TestParseMix(t *testing.T) {
	good := map[string][]mixEntry{
		"form":                 {{"form", 1}},
		"form:8,batch:1":       {{"form", 8}, {"batch", 1}},
		"form:2, solve":        {{"form", 2}, {"solve", 1}},
		"form:0,batch:3":       {{"batch", 3}},
		"form:8,batch:1,solve": {{"form", 8}, {"batch", 1}, {"solve", 1}},
	}
	for in, want := range good {
		got, err := parseMix(in)
		if err != nil {
			t.Fatalf("parseMix(%q): %v", in, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parseMix(%q) = %v, want %v", in, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("parseMix(%q)[%d] = %v, want %v", in, i, got[i], want[i])
			}
		}
	}
	for _, in := range []string{"", "form:-1", "form:x", "delete:1", "form:0"} {
		if _, err := parseMix(in); err == nil {
			t.Errorf("parseMix(%q) succeeded, want error", in)
		}
	}
}

// TestLoadgenAgainstServer drives a real in-process server with the
// full mix for a short burst and checks the report shape.
func TestLoadgenAgainstServer(t *testing.T) {
	ds, err := groupform.Generate(groupform.SynthConfig{
		Users: 60, Items: 24, Clusters: 6, RatingsPerUser: 12, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := groupform.NewServer(groupform.ServerConfig{})
	if err := srv.AddDataset("main", ds); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var out bytes.Buffer
	err = run([]string{
		"-target", ts.URL, "-dataset", "main",
		"-duration", "400ms", "-concurrency", "2",
		"-mix", "form:6,batch:2,solve:2", "-k", "4", "-l", "5", "-batch", "3",
		// grd keeps /solve fast enough for a sub-second smoke run
		// even under -race; ls belongs in real load runs.
		"-algo", "grd",
	}, &out)
	if err != nil {
		t.Fatalf("%v (output: %s)", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"throughput=", "p50=", "p95=", "p99=", "errors=0", "histogram:",
		"server: /form"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}

	// The binary wire path: every form request speaks
	// application/x-groupform-binary in both directions, the run stays
	// error-free, and the server's scrape confirms binary responses
	// actually happened.
	out.Reset()
	err = run([]string{
		"-target", ts.URL, "-dataset", "main",
		"-duration", "300ms", "-concurrency", "2",
		"-mix", "form", "-wire", "binary", "-k", "4", "-l", "5",
	}, &out)
	if err != nil {
		t.Fatalf("binary run: %v (output: %s)", err, out.String())
	}
	s = out.String()
	for _, want := range []string{"errors=0", "server: /form"} {
		if !strings.Contains(s, want) {
			t.Fatalf("binary report missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "binary=0") || strings.Contains(s, "binary=-1") {
		t.Fatalf("binary run produced no binary responses:\n%s", s)
	}

	// -k 1 must not panic the k jitter (regression: Intn(maxK-1) ran
	// before the small-k guard).
	out.Reset()
	err = run([]string{
		"-target", ts.URL, "-dataset", "main",
		"-duration", "100ms", "-concurrency", "1", "-mix", "form",
		"-k", "1", "-l", "3", "-algo", "grd",
	}, &out)
	if err != nil {
		t.Fatalf("-k 1 run: %v (output: %s)", err, out.String())
	}
	if !strings.Contains(out.String(), "errors=0") {
		t.Fatalf("-k 1 run had errors:\n%s", out.String())
	}
}

func TestLoadgenFlagErrors(t *testing.T) {
	cases := [][]string{
		{}, // missing target
		{"-target", "x", "-mix", "delete:1"},
		{"-target", "x", "-concurrency", "0"},
		{"-target", "x", "-wire", "protobuf"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestWorkerSeedDisjointStreams pins the RNG-stream derivation: no
// two (seed, worker) pairs drawn from adjacent seeds and small worker
// indices may share a stream. The old seed+worker derivation failed
// this exactly — worker w+1 under seed s replayed worker w under
// seed s+1 — which made seed sweeps replay each other's traffic.
func TestWorkerSeedDisjointStreams(t *testing.T) {
	const prefix = 8
	type stream [prefix]int64
	draw := func(seed int64, w int) stream {
		rng := rand.New(rand.NewSource(workerSeed(seed, w)))
		var s stream
		for i := range s {
			s[i] = rng.Int63()
		}
		return s
	}
	seen := make(map[stream]string)
	for seed := int64(40); seed < 48; seed++ {
		for w := 0; w < 8; w++ {
			s := draw(seed, w)
			id := fmt.Sprintf("seed=%d worker=%d", seed, w)
			if prev, dup := seen[s]; dup {
				t.Fatalf("streams collide: %s replays %s", id, prev)
			}
			seen[s] = id
		}
	}
	// The regression case by name: the old derivation made these two
	// identical.
	if draw(42, 1) == draw(43, 0) {
		t.Fatal("worker 1 @ seed 42 replays worker 0 @ seed 43 (seed+worker collision)")
	}
}
