// Command loadgen replays a synthetic formation query mix against a
// running groupformd and prints a latency histogram (p50/p95/p99)
// plus throughput — the measuring half of the serving tier.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:8080 [-dataset main] \
//	    [-duration 10s] [-concurrency 8] [-mix form:8,batch:1,solve:1] \
//	    [-wire json|binary] [-k 5] [-l 10] [-batch 8] \
//	    [-upsert-batch 4] [-algo ls] [-seed 1] [-timeout-ms 0] \
//	    [-anytime] [-quality-target 0]
//
// Each worker draws requests from the weighted mix: "form" posts
// /form with semantics, aggregation and k jittered per request,
// "batch" posts /form/batch with -batch jittered parameter sets,
// "solve" posts /solve with the -algo algorithm, and "upsert" posts
// -upsert-batch random rating upserts to /datasets/{name}/ratings —
// mostly re-ratings of existing users, with ~10% of draws minting a
// fresh user ID — so a mix like form:8,upsert:2 drives reads and
// writes concurrently against the live-mutation path. The upsert
// target's name and sizes come from GET /datasets at startup; the
// "upsert" kind therefore needs the server to already serve the
// -dataset name (or exactly one dataset when the flag is empty).
//
// -anytime opts every solve request into graceful degradation and
// -quality-target sets the early-stop bound fraction (implying
// -anytime). The end-of-run report then splits outcomes into four
// columns: errors (non-2xx other than 499), canceled (499 — the
// deadline cut a solve that had nothing feasible), degraded (200
// whose body carried degraded:true and a quality certificate), and
// plain successes; latencies of all four are recorded. Without the
// anytime flags, 499s still count in the canceled column rather than
// being lumped into errors.
//
// -wire binary speaks the zero-copy application/x-groupform-binary
// format on "form" requests (both directions); the other kinds stay
// JSON, which is exactly what the negotiation supports. After the
// run, loadgen scrapes GET /metrics and prints the server-reported
// /form latency quantiles beside the client-observed ones, so
// client-versus-server skew (queueing, the network) is visible in
// one place; daemons without /metrics just skip the line.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	gfdataset "groupform/internal/dataset"
	"groupform/internal/metrics"
	"groupform/internal/semantics"
	"groupform/internal/server"
	"groupform/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// mixEntry is one weighted endpoint in the query mix.
type mixEntry struct {
	kind   string
	weight int
}

// parseMix reads "form:8,batch:1,solve:1" (weights optional,
// defaulting to 1) into a cumulative-weight table.
func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, w := part, 1
		if name, ws, ok := strings.Cut(part, ":"); ok {
			n, err := strconv.Atoi(ws)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("mix weight %q is not a non-negative integer", ws)
			}
			kind, w = name, n
		}
		switch kind {
		case "form", "batch", "solve", "upsert":
		default:
			return nil, fmt.Errorf("unknown mix kind %q (want form, batch, solve or upsert)", kind)
		}
		if w > 0 {
			out = append(out, mixEntry{kind: kind, weight: w})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mix %q selects no endpoints", s)
	}
	return out, nil
}

// pick draws one mix entry by weight.
func pick(mix []mixEntry, rng *rand.Rand) string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	n := rng.Intn(total)
	for _, m := range mix {
		if n -= m.weight; n < 0 {
			return m.kind
		}
	}
	return mix[len(mix)-1].kind
}

// workerResult is one goroutine's share of the run.
type workerResult struct {
	latencies []time.Duration
	errors    int // non-2xx other than 499
	canceled  int // 499: cancellation with no feasible incumbent
	degraded  int // 200 carrying degraded:true (anytime incumbent)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		target      = fs.String("target", "", "base URL of a running groupformd (required)")
		datasetName = fs.String("dataset", "", "dataset name to query (empty works when the server has exactly one)")
		duration    = fs.Duration("duration", 10*time.Second, "how long to generate load")
		concurrency = fs.Int("concurrency", 8, "concurrent client connections")
		mixFlag     = fs.String("mix", "form:8,batch:1,solve:1", "weighted endpoint mix")
		wireFlag    = fs.String("wire", "json", "wire format for form requests: json or binary")
		k           = fs.Int("k", 5, "maximum recommended list length (jittered 2..k per request)")
		l           = fs.Int("l", 10, "maximum number of groups")
		batch       = fs.Int("batch", 8, "parameter sets per /form/batch request")
		upsertBatch = fs.Int("upsert-batch", 4, "rating upserts per /datasets/{name}/ratings request")
		algo        = fs.String("algo", "grd", "algorithm for /solve requests (grd is fast everywhere; ls needs a deadline budget at scale)")
		seed        = fs.Int64("seed", 1, "query-mix seed")
		timeoutMS   = fs.Int64("timeout-ms", 0, "per-request timeout_ms field (0 = server default)")
		anytime     = fs.Bool("anytime", false, "opt solve requests into graceful degradation (200-degraded instead of 499 when an incumbent exists)")
		qTarget     = fs.Float64("quality-target", 0, "anytime early-stop fraction in (0, 1]: stop once the bound proves the incumbent is within this fraction of optimal (implies -anytime; 0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1")
	}
	if *qTarget < 0 || *qTarget > 1 {
		return fmt.Errorf("-quality-target must be in [0, 1], got %v", *qTarget)
	}
	if *qTarget > 0 {
		*anytime = true
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	var binaryWire bool
	switch *wireFlag {
	case "json":
	case "binary":
		binaryWire = true
	default:
		return fmt.Errorf("-wire must be json or binary, got %q", *wireFlag)
	}

	base := strings.TrimRight(*target, "/")
	// A request slower than twice the whole run is hung, not slow —
	// but floor the cutoff so short smoke runs don't count an
	// honest slow solve as an error.
	clientTimeout := 2 * *duration
	if clientTimeout < 5*time.Second {
		clientTimeout = 5 * time.Second
	}
	client := &http.Client{Timeout: clientTimeout}

	// The upsert kind needs a concrete target (the path embeds the
	// dataset name) and the catalog's sizes to draw plausible IDs, so
	// resolve both from GET /datasets before the first worker starts.
	var up *upsertTarget
	for _, m := range mix {
		if m.kind == "upsert" {
			if up, err = discoverUpsertTarget(client, base, *datasetName, *upsertBatch); err != nil {
				return err
			}
			break
		}
	}

	deadline := time.Now().Add(*duration)
	results := make([]workerResult, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(*seed, w)))
			res := &results[w]
			for time.Now().Before(deadline) {
				kind := pick(mix, rng)
				body, path, binary := buildRequest(kind, rng, *datasetName, *k, *l, *batch, *algo, *timeoutMS, binaryWire, *anytime, *qTarget, up)
				t0 := time.Now()
				outcome := post(client, base+path, body, binary)
				res.latencies = append(res.latencies, time.Since(t0))
				switch {
				case outcome.status == server.StatusClientClosedRequest:
					res.canceled++
				case outcome.status < 200 || outcome.status >= 300:
					res.errors++
				case outcome.degraded:
					res.degraded++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errors, canceled, degraded := 0, 0, 0
	for _, r := range results {
		all = append(all, r.latencies...)
		errors += r.errors
		canceled += r.canceled
		degraded += r.degraded
	}
	if len(all) == 0 {
		return fmt.Errorf("no requests completed within %v", *duration)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	report(out, all, errors, canceled, degraded, elapsed, *mixFlag, *concurrency)
	scrapeServerReport(client, base, out)
	return nil
}

// upsertTarget is the resolved destination for "upsert" requests:
// the dataset name the path embeds, its sizes for drawing IDs, and a
// shared counter that mints fresh user IDs above a high watermark so
// concurrent workers never reuse one.
type upsertTarget struct {
	name         string
	users, items int
	batch        int
	nextUser     atomic.Int64
}

// freshUserBase offsets minted user IDs; IDs this large are assumed
// (not guaranteed — a collision just turns the draw into a re-rating
// or a mid-range rebuild, both valid traffic) to sit above the
// catalog's real ID range, keeping minted users on the overlay's
// appendable fast path.
const freshUserBase = 1 << 28

// discoverUpsertTarget resolves the upsert destination from GET
// /datasets: the -dataset name must be served (or the server must
// serve exactly one dataset when the flag is empty).
func discoverUpsertTarget(client *http.Client, base, name string, batch int) (*upsertTarget, error) {
	resp, err := client.Get(base + "/datasets")
	if err != nil {
		return nil, fmt.Errorf("discover upsert target: %w", err)
	}
	defer resp.Body.Close()
	var infos map[string]server.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("discover upsert target: decode GET /datasets: %w", err)
	}
	if name == "" {
		if len(infos) != 1 {
			return nil, fmt.Errorf("the upsert mix needs -dataset when the server serves %d datasets", len(infos))
		}
		for n := range infos {
			name = n
		}
	}
	info, ok := infos[name]
	if !ok {
		return nil, fmt.Errorf("the upsert mix targets dataset %q, which the server does not serve", name)
	}
	if info.Users == 0 || info.Items == 0 {
		return nil, fmt.Errorf("dataset %q is empty; nothing to upsert against", name)
	}
	t := &upsertTarget{name: name, users: info.Users, items: info.Items, batch: batch}
	t.nextUser.Store(freshUserBase)
	return t, nil
}

// buildRequest synthesizes one request of the given kind; binary
// reports whether the body is a binary wire frame (form kind under
// -wire binary) rather than JSON. k jitters in [2, maxK] and the
// aggregation cycles through min/max/sum so the server's bucket-key
// and cache behavior is exercised across the realistic parameter
// space, not one hot cell.
func buildRequest(kind string, rng *rand.Rand, dataset string, maxK, l, batch int, algo string, timeoutMS int64, binaryWire, anytime bool, qTarget float64, up *upsertTarget) (body []byte, path string, binary bool) {
	params := func() server.FormParams {
		k := maxK
		if maxK > 2 {
			k = 2 + rng.Intn(maxK-1)
		}
		return server.FormParams{
			K:             k,
			L:             l,
			Semantics:     []string{"lm", "av"}[rng.Intn(2)],
			Aggregation:   []string{"min", "max", "sum"}[rng.Intn(3)],
			Anytime:       anytime,
			QualityTarget: qTarget,
		}
	}
	switch kind {
	case "upsert":
		// Mostly re-ratings of existing users/items (the dirty-row
		// invalidation path); ~1 in 10 draws mints a fresh user, which
		// lands on the overlay's append path server-side.
		var req server.UpsertRequest
		for i := 0; i < up.batch; i++ {
			u := int64(1 + rng.Intn(up.users))
			if rng.Intn(10) == 0 {
				u = up.nextUser.Add(1)
			}
			req.Ratings = append(req.Ratings, server.RatingJSON{
				User:  gfdataset.UserID(u),
				Item:  gfdataset.ItemID(1 + rng.Intn(up.items)),
				Value: float64(1 + rng.Intn(5)),
			})
		}
		body, _ := json.Marshal(req)
		return body, "/datasets/" + up.name + "/ratings", false
	case "batch":
		req := server.BatchRequest{Dataset: dataset, TimeoutMS: timeoutMS}
		for i := 0; i < batch; i++ {
			req.Requests = append(req.Requests, params())
		}
		body, _ := json.Marshal(req)
		return body, "/form/batch", false
	case "solve":
		req := server.SolveRequest{Dataset: dataset, Algo: algo, Seed: rng.Int63(), TimeoutMS: timeoutMS, FormParams: params()}
		body, _ := json.Marshal(req)
		return body, "/solve", false
	default:
		if binaryWire {
			// The binary frame carries the same jittered parameter
			// space as the JSON path, just as enums instead of strings.
			k := maxK
			if maxK > 2 {
				k = 2 + rng.Intn(maxK-1)
			}
			frame := wire.AppendFormRequest(nil, wire.FormRequest{
				Dataset:   []byte(dataset),
				K:         k,
				L:         l,
				Semantics: []semantics.Semantics{semantics.LM, semantics.AV}[rng.Intn(2)],
				Aggregation: []semantics.Aggregation{
					semantics.Min, semantics.Max, semantics.Sum,
				}[rng.Intn(3)],
				TimeoutMS:     timeoutMS,
				Anytime:       anytime,
				QualityTarget: qTarget,
			})
			return frame, "/form", true
		}
		req := server.FormRequest{Dataset: dataset, TimeoutMS: timeoutMS, FormParams: params()}
		body, _ := json.Marshal(req)
		return body, "/form", false
	}
}

// workerSeed derives worker w's RNG stream from the base seed
// through a splitmix64 mix. The old derivation, seed + w, made
// adjacent streams collide across runs: worker 1 under -seed 42
// replayed worker 0 under -seed 43 request for request, so sweeping
// seeds did not sweep workloads. Feeding (seed, w) through the
// splitmix64 finalizer decorrelates every pair — nearby inputs map
// to unrelated 64-bit states (pinned by TestWorkerSeedDisjointStreams).
func workerSeed(seed int64, w int) int64 {
	z := uint64(seed) + (uint64(w)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// postResult classifies one request's outcome: the HTTP status (0 on
// a transport error) and whether a 2xx response carried a degraded
// anytime result.
type postResult struct {
	status   int
	degraded bool
}

// post sends one request, reading the full body so connections get
// reused. Binary frames negotiate the wire format in both directions;
// everything else is plain JSON. Degraded detection is cheap and
// shape-specific: a binary response flags it in the header's flags
// byte, a JSON response carries "degraded":true in the envelope.
func post(client *http.Client, url string, body []byte, binary bool) postResult {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return postResult{}
	}
	if binary {
		req.Header.Set("Content-Type", wire.ContentType)
		req.Header.Set("Accept", wire.ContentType)
	} else {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return postResult{}
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return postResult{}
	}
	out := postResult{status: resp.StatusCode}
	if out.status < 200 || out.status >= 300 {
		return out
	}
	if resp.Header.Get("Content-Type") == wire.ContentType {
		out.degraded = len(respBody) >= 4 && respBody[3]&wire.FlagDegraded != 0
	} else {
		out.degraded = bytes.Contains(respBody, []byte(`"degraded":true`))
	}
	return out
}

// scrapeServerReport fetches GET /metrics after the run and prints
// the server's own view of /form latency beside the client-observed
// report, plus the shed and binary-response counters. Best effort: a
// daemon without /metrics (or an unparsable scrape) just skips the
// line rather than failing a finished run.
func scrapeServerReport(client *http.Client, base string, out io.Writer) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	text := string(raw)
	h, err := metrics.ParseHistogram(text, "groupform_request_duration_seconds", `endpoint="form"`)
	if err != nil || h.Count == 0 {
		return
	}
	fmt.Fprintf(out, "server: /form p50=%v p95=%v p99=%v count=%d shed=%d binary=%d degraded=%d\n",
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Count,
		scalarValue(text, "groupform_shed_total"),
		scalarValue(text, "groupform_binary_responses_total"),
		degradedTotal(text))
	routerReport(text, out)
}

// routerReport prints the per-shard upstream rows when the scraped
// target is a groupform-router (its exposition carries the
// groupform_router_shard_* families); against a plain groupformd the
// families are absent and nothing prints.
func routerReport(text string, out io.Writer) {
	for shard := 0; ; shard++ {
		label := `shard="` + strconv.Itoa(shard) + `"`
		reqs := labeledValue(text, "groupform_router_shard_requests_total", label)
		if reqs < 0 {
			return
		}
		errs := labeledValue(text, "groupform_router_shard_errors_total", label)
		fmt.Fprintf(out, "router: shard %d requests=%d errors=%d\n", shard, reqs, errs)
	}
}

// degradedTotal sums the groupform_degraded_total counter over the
// solve endpoints; -1 means the metric family was absent (an older
// daemon).
func degradedTotal(text string) int64 {
	total, found := int64(0), false
	for _, ep := range []string{"form", "form_batch", "solve"} {
		if v := labeledValue(text, "groupform_degraded_total", `endpoint="`+ep+`"`); v >= 0 {
			total += v
			found = true
		}
	}
	if !found {
		return -1
	}
	return total
}

// labeledValue pulls one labeled counter/gauge sample out of a
// Prometheus text scrape by exact label-set match; -1 means the
// sample was not found.
func labeledValue(text, name, labels string) int64 {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), name+"{"+labels+"} ")
		if !ok {
			continue
		}
		if n, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64); err == nil {
			return n
		}
	}
	return -1
}

// scalarValue pulls one unlabeled counter/gauge sample out of a
// Prometheus text scrape; -1 means the metric was not found.
func scalarValue(text, name string) int64 {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), name+" ")
		if !ok {
			continue
		}
		if n, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64); err == nil {
			return n
		}
	}
	return -1
}

// report prints throughput, the latency quantiles and a power-of-two
// histogram. Outcomes print as separate columns: errors (non-2xx
// other than 499), canceled (499), degraded (200 with a certificate).
func report(out io.Writer, sorted []time.Duration, errors, canceled, degraded int, elapsed time.Duration, mix string, concurrency int) {
	q := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	n := len(sorted)
	fmt.Fprintf(out, "loadgen: mix=%s concurrency=%d elapsed=%v\n", mix, concurrency, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "requests=%d errors=%d canceled=%d degraded=%d throughput=%.1f req/s\n",
		n, errors, canceled, degraded, float64(n)/elapsed.Seconds())
	fmt.Fprintf(out, "latency: p50=%v p95=%v p99=%v mean=%v max=%v\n",
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond), q(0.99).Round(time.Microsecond),
		(sum / time.Duration(n)).Round(time.Microsecond), sorted[n-1].Round(time.Microsecond))
	fmt.Fprintln(out, "histogram:")
	// Buckets double from 100µs; everything slower lands in the last.
	bounds := []time.Duration{100 * time.Microsecond}
	for bounds[len(bounds)-1] < sorted[n-1] && len(bounds) < 16 {
		bounds = append(bounds, bounds[len(bounds)-1]*2)
	}
	counts := make([]int, len(bounds)+1)
	for _, d := range sorted {
		i := sort.Search(len(bounds), func(i int) bool { return d <= bounds[i] })
		counts[i]++
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		label := fmt.Sprintf(">%v", bounds[len(bounds)-1])
		if i < len(bounds) {
			label = fmt.Sprintf("<=%v", bounds[i])
		}
		bar := strings.Repeat("#", 1+c*40/n)
		fmt.Fprintf(out, "  %-12s %6d %s\n", label, c, bar)
	}
}
