// Command loadgen replays a synthetic formation query mix against a
// running groupformd and prints a latency histogram (p50/p95/p99)
// plus throughput — the measuring half of the serving tier.
//
// Usage:
//
//	loadgen -target http://127.0.0.1:8080 [-dataset main] \
//	    [-duration 10s] [-concurrency 8] [-mix form:8,batch:1,solve:1] \
//	    [-k 5] [-l 10] [-batch 8] [-algo ls] [-seed 1] [-timeout-ms 0]
//
// Each worker draws requests from the weighted mix: "form" posts
// /form with semantics, aggregation and k jittered per request,
// "batch" posts /form/batch with -batch jittered parameter sets, and
// "solve" posts /solve with the -algo algorithm. Non-2xx responses
// count as errors (their latency still recorded).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"groupform/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// mixEntry is one weighted endpoint in the query mix.
type mixEntry struct {
	kind   string
	weight int
}

// parseMix reads "form:8,batch:1,solve:1" (weights optional,
// defaulting to 1) into a cumulative-weight table.
func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, w := part, 1
		if name, ws, ok := strings.Cut(part, ":"); ok {
			n, err := strconv.Atoi(ws)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("mix weight %q is not a non-negative integer", ws)
			}
			kind, w = name, n
		}
		switch kind {
		case "form", "batch", "solve":
		default:
			return nil, fmt.Errorf("unknown mix kind %q (want form, batch or solve)", kind)
		}
		if w > 0 {
			out = append(out, mixEntry{kind: kind, weight: w})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mix %q selects no endpoints", s)
	}
	return out, nil
}

// pick draws one mix entry by weight.
func pick(mix []mixEntry, rng *rand.Rand) string {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	n := rng.Intn(total)
	for _, m := range mix {
		if n -= m.weight; n < 0 {
			return m.kind
		}
	}
	return mix[len(mix)-1].kind
}

// workerResult is one goroutine's share of the run.
type workerResult struct {
	latencies []time.Duration
	errors    int
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		target      = fs.String("target", "", "base URL of a running groupformd (required)")
		datasetName = fs.String("dataset", "", "dataset name to query (empty works when the server has exactly one)")
		duration    = fs.Duration("duration", 10*time.Second, "how long to generate load")
		concurrency = fs.Int("concurrency", 8, "concurrent client connections")
		mixFlag     = fs.String("mix", "form:8,batch:1,solve:1", "weighted endpoint mix")
		k           = fs.Int("k", 5, "maximum recommended list length (jittered 2..k per request)")
		l           = fs.Int("l", 10, "maximum number of groups")
		batch       = fs.Int("batch", 8, "parameter sets per /form/batch request")
		algo        = fs.String("algo", "grd", "algorithm for /solve requests (grd is fast everywhere; ls needs a deadline budget at scale)")
		seed        = fs.Int64("seed", 1, "query-mix seed")
		timeoutMS   = fs.Int64("timeout-ms", 0, "per-request timeout_ms field (0 = server default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}

	base := strings.TrimRight(*target, "/")
	// A request slower than twice the whole run is hung, not slow —
	// but floor the cutoff so short smoke runs don't count an
	// honest slow solve as an error.
	clientTimeout := 2 * *duration
	if clientTimeout < 5*time.Second {
		clientTimeout = 5 * time.Second
	}
	client := &http.Client{Timeout: clientTimeout}
	deadline := time.Now().Add(*duration)
	results := make([]workerResult, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			res := &results[w]
			for time.Now().Before(deadline) {
				kind := pick(mix, rng)
				body, path := buildRequest(kind, rng, *datasetName, *k, *l, *batch, *algo, *timeoutMS)
				t0 := time.Now()
				ok := post(client, base+path, body)
				res.latencies = append(res.latencies, time.Since(t0))
				if !ok {
					res.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errors := 0
	for _, r := range results {
		all = append(all, r.latencies...)
		errors += r.errors
	}
	if len(all) == 0 {
		return fmt.Errorf("no requests completed within %v", *duration)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	report(out, all, errors, elapsed, *mixFlag, *concurrency)
	return nil
}

// buildRequest synthesizes one request of the given kind. k jitters
// in [2, maxK] and the aggregation cycles through min/max/sum so the
// server's bucket-key and cache behavior is exercised across the
// realistic parameter space, not one hot cell.
func buildRequest(kind string, rng *rand.Rand, dataset string, maxK, l, batch int, algo string, timeoutMS int64) ([]byte, string) {
	params := func() server.FormParams {
		k := maxK
		if maxK > 2 {
			k = 2 + rng.Intn(maxK-1)
		}
		return server.FormParams{
			K:           k,
			L:           l,
			Semantics:   []string{"lm", "av"}[rng.Intn(2)],
			Aggregation: []string{"min", "max", "sum"}[rng.Intn(3)],
		}
	}
	switch kind {
	case "batch":
		req := server.BatchRequest{Dataset: dataset, TimeoutMS: timeoutMS}
		for i := 0; i < batch; i++ {
			req.Requests = append(req.Requests, params())
		}
		body, _ := json.Marshal(req)
		return body, "/form/batch"
	case "solve":
		req := server.SolveRequest{Dataset: dataset, Algo: algo, Seed: rng.Int63(), TimeoutMS: timeoutMS, FormParams: params()}
		body, _ := json.Marshal(req)
		return body, "/solve"
	default:
		req := server.FormRequest{Dataset: dataset, TimeoutMS: timeoutMS, FormParams: params()}
		body, _ := json.Marshal(req)
		return body, "/form"
	}
}

// post sends one request, draining the body so connections get
// reused; ok reports a 2xx status.
func post(client *http.Client, url string, body []byte) bool {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// report prints throughput, the latency quantiles and a power-of-two
// histogram.
func report(out io.Writer, sorted []time.Duration, errors int, elapsed time.Duration, mix string, concurrency int) {
	q := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	n := len(sorted)
	fmt.Fprintf(out, "loadgen: mix=%s concurrency=%d elapsed=%v\n", mix, concurrency, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "requests=%d errors=%d throughput=%.1f req/s\n", n, errors, float64(n)/elapsed.Seconds())
	fmt.Fprintf(out, "latency: p50=%v p95=%v p99=%v mean=%v max=%v\n",
		q(0.50).Round(time.Microsecond), q(0.95).Round(time.Microsecond), q(0.99).Round(time.Microsecond),
		(sum / time.Duration(n)).Round(time.Microsecond), sorted[n-1].Round(time.Microsecond))
	fmt.Fprintln(out, "histogram:")
	// Buckets double from 100µs; everything slower lands in the last.
	bounds := []time.Duration{100 * time.Microsecond}
	for bounds[len(bounds)-1] < sorted[n-1] && len(bounds) < 16 {
		bounds = append(bounds, bounds[len(bounds)-1]*2)
	}
	counts := make([]int, len(bounds)+1)
	for _, d := range sorted {
		i := sort.Search(len(bounds), func(i int) bool { return d <= bounds[i] })
		counts[i]++
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		label := fmt.Sprintf(">%v", bounds[len(bounds)-1])
		if i < len(bounds) {
			label = fmt.Sprintf("<=%v", bounds[i])
		}
		bar := strings.Repeat("#", 1+c*40/n)
		fmt.Fprintf(out, "  %-12s %6d %s\n", label, c, bar)
	}
}
