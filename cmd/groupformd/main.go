// Command groupformd serves recommendation-aware group formation
// over HTTP: it loads one or more datasets into a hot-swappable
// engine registry and answers /form (JSON or the binary wire
// format, negotiated per direction via application/x-groupform-binary),
// /form/batch, /solve, /datasets/{name} uploads,
// /datasets/{name}/ratings live upserts, /healthz and Prometheus
// text metrics on GET /metrics, with the API documented in
// docs/API.md.
//
// Usage:
//
//	groupformd -listen :8080 -dataset main=ratings.csv \
//	    [-dataset other=more.bin ...] [-workers 0] \
//	    [-max-inflight 64|auto] [-target-p99 250ms] [-timeout 30s] \
//	    [-max-upload 1073741824] [-compact-after 4096] \
//	    [-drain-timeout 30s] [-shard 0/3]
//
// -shard i/S puts the daemon in shard role for the scatter-gather
// topology of cmd/groupform-router: every loaded dataset is sliced to
// the i-th of S contiguous user ranges, the /shard/* endpoints answer
// the router's scatter and gather calls, and live upserts are
// rejected (a mutation on one shard would break the partition).
//
// Each -dataset flag is name=path; the file loads through the
// sniffing loader, so CSV and the compact binary format both work.
// Starting with no -dataset flags is allowed: datasets can be
// uploaded later with POST /datasets/{name}. -max-inflight takes a
// fixed cap, 0 (unlimited), or "auto": adaptive admission that walks
// the cap to keep the observed solve p99 at the -target-p99 SLO
// (default 250ms when auto; setting -target-p99 alongside a fixed
// cap uses that cap as the walk's starting point). -listen accepts
// :0 to pick a free port; the bound address is printed on one line
// ("groupformd: listening on http://...") so scripts and tests can
// scrape it. SIGINT/SIGTERM drain in-flight requests and exit;
// -drain-timeout (default 30s, 0 = default) bounds the drain so a
// hung solve cannot wedge shutdown — when it expires, remaining
// connections are dropped and the daemon still exits cleanly. The
// drain start is logged on one structured line
// ("groupformd: draining inflight=N timeout=T") so operators can see
// how much work the signal interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"groupform"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "groupformd:", err)
		os.Exit(1)
	}
}

// datasetFlags collects repeatable -dataset name=path values.
type datasetFlags []string

func (d *datasetFlags) String() string { return strings.Join(*d, ",") }
func (d *datasetFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("-dataset wants name=path, got %q", v)
	}
	*d = append(*d, v)
	return nil
}

// shutdown carries the termination signal; package-level so tests can
// stop a running daemon without delivering a real signal to the test
// process.
var shutdown = make(chan os.Signal, 1)

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("groupformd", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var datasets datasetFlags
	fs.Var(&datasets, "dataset", "name=path of a ratings file to serve (repeatable; CSV or binary, sniffed)")
	var (
		listen       = fs.String("listen", ":8080", "address to listen on (host:port; :0 picks a free port)")
		workers      = fs.Int("workers", 0, "default formation worker count per request (0 or 1 = serial zero-alloc path, -1 = all CPUs)")
		maxInflight  = fs.String("max-inflight", "0", "maximum concurrently served requests; excess get 503 (0 = unlimited, auto = adapt to -target-p99)")
		targetP99    = fs.Duration("target-p99", 0, "solve-latency p99 SLO for adaptive admission (0 = off; -max-inflight=auto defaults this to 250ms)")
		timeout      = fs.Duration("timeout", 0, "default per-solve deadline for requests without timeout_ms (0 = unbounded)")
		maxUpload    = fs.Int64("max-upload", 0, "maximum POST /datasets/{name} body bytes (0 = 1 GiB)")
		compactAfter = fs.Int("compact-after", 0, "overlay upserts before a dataset is compacted in the background (0 = 4096 default, negative = never)")
		drainFlag    = fs.Duration("drain-timeout", defaultDrainTimeout, "maximum time to drain in-flight requests on SIGINT/SIGTERM before dropping them (0 = 30s default)")
		shardFlag    = fs.String("shard", "", "serve shard i of S user slices as i/S (e.g. 0/3); every loaded dataset is sliced and upserts are rejected")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	inflight, p99, err := admissionFlags(*maxInflight, *targetP99)
	if err != nil {
		return err
	}
	drain, err := drainTimeout(*drainFlag)
	if err != nil {
		return err
	}
	shard, shards, err := shardFlagValue(*shardFlag)
	if err != nil {
		return err
	}

	srv := groupform.NewServer(groupform.ServerConfig{
		Workers:        *workers,
		MaxInflight:    inflight,
		TargetP99:      p99,
		DefaultTimeout: *timeout,
		MaxUploadBytes: *maxUpload,
		CompactAfter:   *compactAfter,
		Shard:          shard,
		Shards:         shards,
	})
	if shards > 0 {
		fmt.Fprintf(out, "groupformd: serving shard %d/%d\n", shard, shards)
	}
	for _, spec := range datasets {
		name, path, _ := strings.Cut(spec, "=")
		if err := loadInto(srv, name, path, out); err != nil {
			return err
		}
	}
	if len(datasets) == 0 {
		fmt.Fprintln(out, "groupformd: no -dataset flags; waiting for POST /datasets/{name} uploads")
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "groupformd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	signal.Notify(shutdown, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(shutdown)
	done := make(chan error, 1)
	go func() {
		<-shutdown
		fmt.Fprintf(out, "groupformd: draining inflight=%d timeout=%v\n", srv.Inflight(), drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		done <- hs.Shutdown(ctx)
	}()
	if err := hs.Serve(ln); err != http.ErrServerClosed {
		return err
	}
	if err := <-done; err != nil {
		// The drain deadline expired with requests still running;
		// Shutdown already closed their connections, so report it but
		// still exit cleanly — a bounded drain is the whole point.
		fmt.Fprintf(out, "groupformd: drain timeout after %v: %v\n", drain, err)
	}
	// In-flight requests are drained; let any compaction they
	// scheduled republish before the registry goes away with us.
	srv.WaitCompactions()
	fmt.Fprintln(out, "groupformd: drained, bye")
	return nil
}

// defaultTargetP99 is the SLO -max-inflight=auto assumes when
// -target-p99 is not given.
const defaultTargetP99 = 250 * time.Millisecond

// defaultDrainTimeout bounds the SIGINT/SIGTERM drain when
// -drain-timeout is not given: long enough for any sane solve
// deadline, short enough that a wedged handler cannot hold the
// process hostage.
const defaultDrainTimeout = 30 * time.Second

// drainTimeout resolves the -drain-timeout flag: 0 means the default,
// negative is an error (an instant drop is spelled as a very small
// positive duration, not a negative one).
func drainTimeout(d time.Duration) (time.Duration, error) {
	if d < 0 {
		return 0, fmt.Errorf("-drain-timeout must be non-negative, got %v", d)
	}
	if d == 0 {
		return defaultDrainTimeout, nil
	}
	return d, nil
}

// admissionFlags resolves -max-inflight (a count or "auto") and
// -target-p99 into the server's admission config. "auto" turns on
// adaptation and defaults the SLO; a fixed count with an explicit
// -target-p99 also adapts, using the count as the starting point.
func admissionFlags(maxInflight string, targetP99 time.Duration) (int, time.Duration, error) {
	if targetP99 < 0 {
		return 0, 0, fmt.Errorf("-target-p99 must be non-negative, got %v", targetP99)
	}
	if maxInflight == "auto" {
		if targetP99 == 0 {
			targetP99 = defaultTargetP99
		}
		return 0, targetP99, nil
	}
	n, err := strconv.Atoi(maxInflight)
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("-max-inflight wants a non-negative count or \"auto\", got %q", maxInflight)
	}
	return n, targetP99, nil
}

// shardFlagValue parses -shard "i/S" into the topology position;
// empty means unsharded.
func shardFlagValue(v string) (shard, shards int, err error) {
	if v == "" {
		return 0, 0, nil
	}
	a, b, ok := strings.Cut(v, "/")
	if !ok {
		return 0, 0, fmt.Errorf("-shard wants i/S (e.g. 0/3), got %q", v)
	}
	if shard, err = strconv.Atoi(a); err == nil {
		shards, err = strconv.Atoi(b)
	}
	if err != nil || shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("-shard wants i/S with 0 <= i < S, got %q", v)
	}
	return shard, shards, nil
}

// loadInto reads one -dataset spec into the server's registry.
func loadInto(srv *groupform.Server, name, path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ds, err := groupform.Load(f, groupform.DefaultScale)
	if err != nil {
		return fmt.Errorf("dataset %s (%s): %w", name, path, err)
	}
	if err := srv.AddDataset(name, ds); err != nil {
		return fmt.Errorf("dataset %s: %w", name, err)
	}
	fmt.Fprintf(out, "groupformd: dataset %s: %s\n", name, ds.Describe())
	return nil
}
