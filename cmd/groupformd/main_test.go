package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"groupform"
)

// syncBuffer lets the test read daemon output while run() writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// writeRatings materializes a small synthetic dataset as a CSV file.
func writeRatings(t *testing.T) string {
	t.Helper()
	ds, err := groupform.Generate(groupform.SynthConfig{
		Users: 80, Items: 30, Clusters: 8, RatingsPerUser: 15, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ratings.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := groupform.WriteCSV(f, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

var listenRE = regexp.MustCompile(`listening on (http://\S+)`)

// TestServeAndShutdown boots the daemon on a random port, speaks the
// API over real HTTP, and drains it through the shutdown path.
func TestServeAndShutdown(t *testing.T) {
	path := writeRatings(t)
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-dataset", "main=" + path, "-max-inflight", "auto"}, out)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v (output: %s)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen line within 10s: %s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(health), `"main"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, health)
	}

	form := `{"dataset":"main","k":3,"l":5,"semantics":"lm","agg":"min"}`
	resp, err = http.Post(base+"/form", "application/json", strings.NewReader(form))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/form: %d %s", resp.StatusCode, body)
	}
	var fr struct {
		Groups []struct {
			Members []int `json:"members"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(body, &fr); err != nil || len(fr.Groups) == 0 {
		t.Fatalf("/form body %s (err %v)", body, err)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 ||
		!strings.Contains(string(scrape), `groupform_requests_total{endpoint="form"} 1`) ||
		!strings.Contains(string(scrape), "groupform_inflight_limit") {
		t.Fatalf("/metrics: %d %s", resp.StatusCode, scrape)
	}

	shutdown <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within 15s")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("missing drain line: %s", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-dataset", "missing-equals"},
		{"-dataset", "x=/does/not/exist.csv", "-listen", "127.0.0.1:0"},
		{"-listen", "not-an-address"},
		{"-max-inflight", "bogus"},
		{"-max-inflight", "-1"},
		{"-target-p99", "-1s"},
		{"-drain-timeout", "-5s", "-listen", "127.0.0.1:0"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestAdmissionFlags pins how -max-inflight and -target-p99 resolve
// into the server's admission config.
func TestAdmissionFlags(t *testing.T) {
	cases := []struct {
		inflight string
		p99      time.Duration
		wantN    int
		wantP99  time.Duration
		wantErr  bool
	}{
		{"0", 0, 0, 0, false},
		{"16", 0, 16, 0, false},
		{"auto", 0, 0, defaultTargetP99, false},
		{"auto", 100 * time.Millisecond, 0, 100 * time.Millisecond, false},
		{"16", 100 * time.Millisecond, 16, 100 * time.Millisecond, false},
		{"-3", 0, 0, 0, true},
		{"sixteen", 0, 0, 0, true},
		{"16", -time.Second, 0, 0, true},
	}
	for _, c := range cases {
		n, p99, err := admissionFlags(c.inflight, c.p99)
		if (err != nil) != c.wantErr {
			t.Errorf("admissionFlags(%q, %v) err = %v, wantErr %v", c.inflight, c.p99, err, c.wantErr)
			continue
		}
		if !c.wantErr && (n != c.wantN || p99 != c.wantP99) {
			t.Errorf("admissionFlags(%q, %v) = (%d, %v), want (%d, %v)",
				c.inflight, c.p99, n, p99, c.wantN, c.wantP99)
		}
	}
}

// TestDrainTimeoutFlag pins how -drain-timeout resolves: 0 means the
// 30s default, positive values pass through, negative is an error.
func TestDrainTimeoutFlag(t *testing.T) {
	cases := []struct {
		in      time.Duration
		want    time.Duration
		wantErr bool
	}{
		{0, defaultDrainTimeout, false},
		{time.Second, time.Second, false},
		{5 * time.Minute, 5 * time.Minute, false},
		{-time.Second, 0, true},
	}
	for _, c := range cases {
		got, err := drainTimeout(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("drainTimeout(%v) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("drainTimeout(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
