// Command gfvet runs the project's static-analysis suite: the custom
// analyzers of internal/analysis that mechanically enforce the
// engine's correctness contracts (sentinel-wrapped errors, paired
// scratch leases, cancellation cadence in hot loops, the zero-alloc
// roster, the deprecated-facade ban). It is the multichecker CI runs
// alongside go vet:
//
//	go run ./cmd/gfvet ./...
//
// Diagnostics print as file:line:col: rule: message; any diagnostic
// makes the exit status 1. Individual sites are suppressed — with a
// mandatory justification — via
//
//	//gfvet:allow <rule>[,<rule>] -- <justification>
//
// on the flagged line or the line above it. -rules narrows the run
// to a comma-separated subset; -list prints the suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"groupform/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("gfvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule subset to run (default: all)")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: gfvet [-rules a,b] [-list] [packages]\n\npackages default to ./...; patterns support dir and dir/... forms.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectRules(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "gfvet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintln(stderr, "gfvet:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "gfvet:", err)
		return 2
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "gfvet:", err)
		return 2
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		fmt.Fprintf(stdout, "%s: %s: %s\n", pos, d.Rule, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "gfvet: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

func selectRules(spec string) ([]*analysis.Analyzer, error) {
	if spec == "" {
		return analysis.Analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analysis.Analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(spec, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (run gfvet -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
