// Command datagen emits a synthetic clustered rating dataset as CSV
// on stdout, in the shape of the paper's evaluation data. The output
// feeds straight into the groupform command.
//
// Usage:
//
//	datagen -users 1000 -items 200 -clusters 40 -ratings 50 \
//	    -noise 0.1 -explore 0.2 -seed 1 > ratings.csv
//	datagen -preset yahoo -users 10000 -items 1000 > yahoo.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"groupform"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, out, logw io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		users    = fs.Int("users", 1000, "number of users")
		items    = fs.Int("items", 200, "number of items")
		clusters = fs.Int("clusters", 0, "latent taste clusters (0 = users/20)")
		ratings  = fs.Int("ratings", 0, "ratings per user (0 = dense)")
		noise    = fs.Float64("noise", 0.1, "probability of a +-1 rating perturbation")
		explore  = fs.Float64("explore", 0.2, "fraction of ratings on random items")
		seed     = fs.Int64("seed", 1, "generation seed")
		preset   = fs.String("preset", "", "optional preset: yahoo, movielens or flickr")
		binaryF  = fs.Bool("binary", false, "emit the compact binary (CSR) format instead of CSV; loads with bulk reads")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		ds  *groupform.Dataset
		err error
	)
	switch *preset {
	case "":
		c := *clusters
		if c == 0 {
			c = *users / 20
			if c < 2 {
				c = 2
			}
		}
		ds, err = groupform.Generate(groupform.SynthConfig{
			Users: *users, Items: *items, Clusters: c,
			RatingsPerUser: *ratings, NoiseRate: *noise, ExploreFrac: *explore,
			Seed: *seed,
		})
	case "yahoo":
		ds, err = groupform.YahooLike(*users, *items, *seed)
	case "movielens":
		ds, err = groupform.MovieLensLike(*users, *items, *seed)
	case "flickr":
		ds, err = groupform.Generate(groupform.SynthConfig{
			Users: *users, Items: 10, Clusters: 3, RatingsPerUser: 10,
			NoiseRate: 0.1, Seed: *seed,
		})
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "generated %s\n", ds.Describe())
	if *binaryF {
		return groupform.WriteBinary(out, ds)
	}
	return groupform.WriteCSV(out, ds)
}
