package main

import (
	"bytes"
	"strings"
	"testing"

	"groupform"
)

func TestDatagenCustom(t *testing.T) {
	var out, logw bytes.Buffer
	err := run([]string{"-users", "20", "-items", "10", "-clusters", "3", "-seed", "2"}, &out, &logw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(logw.String(), "generated users=20") {
		t.Errorf("log line: %q", logw.String())
	}
	ds, err := groupform.LoadCSV(&out, groupform.DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 20 {
		t.Errorf("round trip users = %d", ds.NumUsers())
	}
}

func TestDatagenPresets(t *testing.T) {
	for _, preset := range []string{"yahoo", "movielens", "flickr"} {
		var out, logw bytes.Buffer
		err := run([]string{"-preset", preset, "-users", "30", "-items", "15"}, &out, &logw)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s: empty output", preset)
		}
	}
}

func TestDatagenDefaultClusters(t *testing.T) {
	var out, logw bytes.Buffer
	// users/20 < 2 forces the cluster floor of 2.
	if err := run([]string{"-users", "10", "-items", "5", "-noise", "0"}, &out, &logw); err != nil {
		t.Fatal(err)
	}
}

func TestDatagenErrors(t *testing.T) {
	cases := [][]string{
		{"-preset", "bogus"},
		{"-users", "0"},
		{"-noise", "2"},
	}
	for i, args := range cases {
		var out, logw bytes.Buffer
		if err := run(args, &out, &logw); err == nil {
			t.Errorf("case %d (%v) should error", i, args)
		}
	}
}

func TestDatagenBinary(t *testing.T) {
	var out, logw bytes.Buffer
	if err := run([]string{"-users", "15", "-items", "8", "-binary"}, &out, &logw); err != nil {
		t.Fatal(err)
	}
	ds, err := groupform.ReadBinary(&out)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 15 {
		t.Errorf("binary round trip users = %d", ds.NumUsers())
	}
}
