package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestExperimentsSelected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "t3, f7", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "## T3") || !strings.Contains(s, "## F7") {
		t.Errorf("missing exhibits:\n%s", s)
	}
	if !strings.Contains(s, "at small scale") {
		t.Errorf("missing scale note:\n%s", s)
	}
}

func TestExperimentsAblation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "a4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "## A4") {
		t.Errorf("missing ablation exhibit:\n%s", out.String())
	}
}

func TestExperimentsAlgoList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algo", "list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "grd") || !strings.Contains(out.String(), "baseline-kmeans") {
		t.Errorf("-algo list output incomplete:\n%s", out.String())
	}
}

func TestExperimentsAlgoSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "f4a", "-algo", "kmeans"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BASELINE-KMEANS-LM-MIN") {
		t.Errorf("primary series should be the selected solver:\n%s", out.String())
	}
}

func TestExperimentsUnknownAlgo(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algo", "zz"}, &out); err == nil {
		t.Error("unknown algo should error")
	}
}

// The exact references cannot meet any runtime-sweep point; the sweep
// must refuse them up front with a clear message rather than erroring
// midway through the first point.
func TestExperimentsAlgoUnsuitableForSweeps(t *testing.T) {
	for _, algo := range []string{"exact", "bb", "ip"} {
		var out bytes.Buffer
		err := run([]string{"-exp", "f4a", "-algo", algo}, &out)
		if err == nil || !strings.Contains(err.Error(), "cannot run the runtime sweeps") {
			t.Errorf("%s: err = %v, want a cannot-run-the-sweeps rejection", algo, err)
		}
	}
}

func TestExperimentsUnknownID(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "zz"}, &out); err == nil {
		t.Error("unknown exhibit should error")
	}
}

func TestExperimentsBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-notaflag"}, &out); err == nil {
		t.Error("bad flag should error")
	}
}
