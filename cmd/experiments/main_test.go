package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestExperimentsSelected(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "t3, f7", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "## T3") || !strings.Contains(s, "## F7") {
		t.Errorf("missing exhibits:\n%s", s)
	}
	if !strings.Contains(s, "at small scale") {
		t.Errorf("missing scale note:\n%s", s)
	}
}

func TestExperimentsAblation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "a4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "## A4") {
		t.Errorf("missing ablation exhibit:\n%s", out.String())
	}
}

func TestExperimentsUnknownID(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "zz"}, &out); err == nil {
		t.Error("unknown exhibit should error")
	}
}

func TestExperimentsBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-notaflag"}, &out); err == nil {
		t.Error("bad flag should error")
	}
}
