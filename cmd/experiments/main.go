// Command experiments regenerates the paper's tables and figures and
// prints the series rows (see EXPERIMENTS.md for the paper-vs-
// measured comparison).
//
// Usage:
//
//	experiments                 # run everything at small scale
//	experiments -exp f1a,f4c    # run selected exhibits
//	experiments -paper          # use the paper's parameters (slow)
//	experiments -seed 7 -runs 3
//	experiments -algo ls -exp f4a   # time another registry solver
//	experiments -algo list          # print the solver registry
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"groupform/internal/cliutil"
	"groupform/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		exp     = fs.String("exp", "", "comma-separated exhibit IDs (default: all); e.g. f1a,t4,f7")
		paper   = fs.Bool("paper", false, "use the paper's parameter scales (much slower)")
		seed    = fs.Int64("seed", 1, "base random seed")
		runs    = fs.Int("runs", 0, "quality-metric repetitions (default 1 small / 3 paper)")
		workers = fs.Int("workers", 0, "formation worker count for the runtime exhibits (0 = serial)")
		algo    = fs.String("algo", "grd", "solver the runtime exhibits time, by registry name or alias; 'list' prints all")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	algoName, listed, err := cliutil.HandleAlgo(*algo, out)
	if err != nil {
		return err
	}
	if listed {
		return nil
	}
	opts := experiments.Options{Seed: *seed, Runs: *runs, Workers: *workers, Algo: algoName}
	if *paper {
		opts.Scale = experiments.ScalePaper
	}

	var ids []string
	if *exp == "" {
		for _, r := range experiments.Registry() {
			ids = append(ids, r.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner := experiments.Lookup(id)
		if runner == nil {
			return fmt.Errorf("unknown exhibit %q (known: t3 f1a-f1c f2a-f2b f3a-f3d t4 f4a-f4c f5a-f5d f6a-f6c f7 p1 a1-a4)", id)
		}
		start := time.Now()
		ex, err := runner(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprint(out, ex.Format())
		fmt.Fprintf(out, "(generated in %v at %s scale)\n\n", time.Since(start).Round(time.Millisecond), opts.Scale)
	}
	return nil
}
