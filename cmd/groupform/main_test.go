package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"groupform"
)

func writeRatings(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ratings.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// example1CSV is the paper's Table 1 in CSV form.
const example1CSV = `user,item,rating
0,0,1
0,1,4
0,2,3
1,0,2
1,1,3
1,2,5
2,0,2
2,1,5
2,2,1
3,0,2
3,1,5
3,2,1
4,0,3
4,1,1
4,2,1
5,0,1
5,1,2
5,2,5
`

func TestRunGRD(t *testing.T) {
	path := writeRatings(t, example1CSV)
	var out bytes.Buffer
	err := run([]string{"-input", path, "-k", "1", "-l", "3", "-semantics", "lm", "-agg", "min"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "algorithm=GRD-LM-MIN objective=11.000 groups=3") {
		t.Errorf("output missing expected summary:\n%s", s)
	}
	if !strings.Contains(s, "group sizes:") {
		t.Errorf("output missing size summary:\n%s", s)
	}
}

func TestRunExactAndVerbose(t *testing.T) {
	path := writeRatings(t, example1CSV)
	var out bytes.Buffer
	err := run([]string{"-input", path, "-k", "1", "-l", "3", "-algo", "exact", "-v"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "objective=12.000") {
		t.Errorf("exact objective missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "members=") {
		t.Errorf("verbose member output missing:\n%s", out.String())
	}
}

func TestRunBaselineAndLocalSearch(t *testing.T) {
	path := writeRatings(t, example1CSV)
	for _, algo := range []string{"baseline", "kmeans", "localsearch"} {
		var out bytes.Buffer
		if err := run([]string{"-input", path, "-k", "1", "-l", "3", "-algo", algo}, &out); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "objective=") {
			t.Errorf("%s: no objective printed", algo)
		}
	}
}

func TestRunAlgoList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algo", "list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range groupform.Solvers() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-algo list missing %q:\n%s", name, out.String())
		}
	}
}

// TestRunRegistrySolvers drives every remaining registry algorithm
// through the CLI on the paper's Example 1 (k=1, where all exact
// solvers agree on 12).
func TestRunRegistrySolvers(t *testing.T) {
	path := writeRatings(t, example1CSV)
	for algo, want := range map[string]string{
		"bb":    "objective=12.000",
		"ip":    "objective=12.000",
		"clara": "objective=",
	} {
		var out bytes.Buffer
		if err := run([]string{"-input", path, "-k", "1", "-l", "3", "-algo", algo}, &out); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("%s: missing %q:\n%s", algo, want, out.String())
		}
	}
}

// TestRunBudgetExpired: a microscopic -budget cancels the solve and
// surfaces the canceled-solve error class.
func TestRunBudgetExpired(t *testing.T) {
	path := writeRatings(t, example1CSV)
	var out bytes.Buffer
	err := run([]string{"-input", path, "-k", "1", "-l", "3", "-algo", "ls", "-budget", "1ns"}, &out)
	if !errors.Is(err, groupform.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRunDensify(t *testing.T) {
	// Sparse file: user 0 misses item 2.
	sparse := "user,item,rating\n0,0,5\n0,1,4\n1,0,4\n1,1,4\n1,2,3\n2,0,4\n2,1,5\n2,2,3\n"
	path := writeRatings(t, sparse)
	for _, p := range []string{"knn", "itemknn", "mf"} {
		var out bytes.Buffer
		if err := run([]string{"-input", path, "-k", "1", "-l", "2", "-densify", p}, &out); err != nil {
			t.Fatalf("densify %s: %v", p, err)
		}
		if !strings.Contains(out.String(), "densified to") {
			t.Errorf("densify %s: missing densify line", p)
		}
	}
}

func TestRunMovieLensFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ratings.dat")
	if err := os.WriteFile(path, []byte("1::10::5::0\n2::10::4::0\n1::20::3::0\n2::20::2::0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-input", path, "-format", "movielens", "-k", "1", "-l", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loaded users=2") {
		t.Errorf("load line missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeRatings(t, example1CSV)
	cases := [][]string{
		{},                           // missing -input
		{"-input", "/nonexistent/x"}, // unreadable file
		{"-input", path, "-format", "xml"},
		{"-input", path, "-semantics", "zz"},
		{"-input", path, "-agg", "zz"},
		{"-input", path, "-algo", "zz"},
		{"-input", path, "-densify", "zz"},
		{"-input", path, "-k", "0"},
		{"-input", path, "-k", "99"},
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v) should error", i, args)
		}
	}
}

func TestRunBinaryFormat(t *testing.T) {
	// Generate binary data with datagen's format and read it back
	// through the groupform CLI.
	ds, err := groupform.FromDense(groupform.DefaultScale, [][]float64{
		{1, 4, 3}, {2, 3, 5}, {2, 5, 1}, {2, 5, 1}, {3, 1, 1}, {1, 2, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ratings.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := groupform.WriteBinary(f, ds); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"-input", path, "-format", "binary", "-k", "1", "-l", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "objective=11.000") {
		t.Errorf("binary path output:\n%s", out.String())
	}
}

// TestRunWorkersFlag: the -workers flag must not change the printed
// groups — the parallel pipeline's determinism contract, observed
// end to end through the CLI.
func TestRunWorkersFlag(t *testing.T) {
	path := writeRatings(t, example1CSV)
	args := []string{"-input", path, "-k", "1", "-l", "3", "-semantics", "lm", "-agg", "min", "-v"}
	var serial bytes.Buffer
	if err := run(args, &serial); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"2", "8", "-1"} {
		var par bytes.Buffer
		if err := run(append([]string{"-workers", w}, args...), &par); err != nil {
			t.Fatal(err)
		}
		if par.String() != serial.String() {
			t.Fatalf("-workers %s changed the output:\nserial:\n%s\nparallel:\n%s", w, serial.String(), par.String())
		}
	}
}
