// Command groupform forms recommendation-aware user groups from a
// ratings file and prints each group with its recommended top-k item
// list and satisfaction score.
//
// Usage:
//
//	groupform -input ratings.csv [-format auto|csv|movielens|binary] \
//	    -k 5 -l 10 -semantics lm -agg min [-algo grd] \
//	    [-densify knn] [-workers 8] [-budget 30s]
//
// Every algorithm in the solver registry is available through -algo;
// `groupform -algo list` prints them. -budget bounds the solve's
// wall-clock time through context cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"groupform"
	"groupform/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "groupform:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("groupform", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		input   = fs.String("input", "", "ratings file (required)")
		format  = fs.String("format", "auto", "input format: auto (sniffs binary vs csv), csv, movielens or binary")
		k       = fs.Int("k", 5, "recommended list length")
		l       = fs.Int("l", 10, "maximum number of groups")
		sem     = fs.String("semantics", "lm", "group semantics: lm or av")
		agg     = fs.String("agg", "min", "aggregation: max, min, sum, wsum-pos, wsum-log")
		algo    = fs.String("algo", "grd", "solver registry name or alias; 'list' prints all")
		densify = fs.String("densify", "", "optional predictor to complete sparse ratings: knn, itemknn or mf")
		seed    = fs.Int64("seed", 1, "seed for randomized algorithms")
		budget  = fs.Duration("budget", 0, "wall-clock budget for the solve (0 = unbounded)")
		workers = fs.Int("workers", 0, "formation worker count (0 or 1 = serial, -1 = all CPUs); forms the same groups for every value on standard rating scales")
		verbose = fs.Bool("v", false, "print members of every group")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	name, listed, err := cliutil.HandleAlgo(*algo, out)
	if err != nil {
		return err
	}
	if listed {
		return nil
	}
	if *input == "" {
		fs.Usage()
		return fmt.Errorf("-input is required")
	}

	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()

	var ds *groupform.Dataset
	switch strings.ToLower(*format) {
	case "auto":
		ds, err = groupform.Load(f, groupform.DefaultScale)
	case "csv":
		ds, err = groupform.LoadCSV(f, groupform.DefaultScale)
	case "movielens":
		ds, err = groupform.LoadMovieLens(f, groupform.DefaultScale)
	case "binary":
		ds, err = groupform.ReadBinary(f)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded %s\n", ds.Describe())

	if *densify != "" {
		var p groupform.Predictor
		switch strings.ToLower(*densify) {
		case "knn":
			p, err = groupform.NewUserKNN(ds, 20)
		case "itemknn":
			p, err = groupform.NewItemKNN(ds, 20)
		case "mf":
			p, err = groupform.NewMF(ds, groupform.MFConfig{Seed: *seed})
		default:
			return fmt.Errorf("unknown predictor %q", *densify)
		}
		if err != nil {
			return err
		}
		if ds, err = groupform.Densify(ds, p); err != nil {
			return err
		}
		fmt.Fprintf(out, "densified to %s\n", ds.Describe())
	}

	cfg := groupform.Config{K: *k, L: *l, Workers: *workers}
	if cfg.Semantics, err = cliutil.ParseSemantics(*sem); err != nil {
		return err
	}
	if cfg.Aggregation, err = cliutil.ParseAggregation(*agg); err != nil {
		return err
	}

	opts := []groupform.SolverOption{groupform.WithSeed(*seed), groupform.WithWorkers(*workers)}
	if *budget > 0 {
		opts = append(opts, groupform.WithBudget(*budget))
	}
	if name == "ls" {
		// Preserve the historical CLI behavior: annealing on, seeded,
		// restarts on the shared worker pool.
		opts = append(opts, groupform.WithLSOptions(groupform.LSOptions{
			Anneal: true, Seed: *seed, Workers: *workers,
		}))
	}
	s, err := groupform.NewSolver(name, opts...)
	if err != nil {
		return err
	}
	res, err := s.Solve(context.Background(), ds, cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "algorithm=%s objective=%.3f groups=%d\n", res.Algorithm, res.Objective, len(res.Groups))
	for i, g := range res.Groups {
		fmt.Fprintf(out, "group %d: size=%d satisfaction=%.3f items=%v\n", i+1, g.Size(), g.Satisfaction, g.Items)
		if *verbose {
			fmt.Fprintf(out, "  members=%v\n  scores=%v\n", g.Members, g.ItemScores)
		}
	}
	if fp, err := groupform.GroupSizeSummary(res); err == nil {
		fmt.Fprintf(out, "group sizes: %s\n", fp)
	}
	return nil
}
