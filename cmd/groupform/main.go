// Command groupform forms recommendation-aware user groups from a
// ratings file and prints each group with its recommended top-k item
// list and satisfaction score.
//
// Usage:
//
//	groupform -input ratings.csv [-format csv|movielens] \
//	    -k 5 -l 10 -semantics lm -agg min [-algorithm grd] \
//	    [-densify knn] [-workers 8]
//
// Algorithms: grd (the paper's greedy, default), baseline
// (Kendall-Tau k-medoids clustering), kmeans (vector k-means
// clustering), exact (subset DP, tiny inputs only), localsearch
// (annealing seeded by grd).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"groupform"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "groupform:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("groupform", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		input     = fs.String("input", "", "ratings file (required)")
		format    = fs.String("format", "csv", "input format: csv, movielens or binary")
		k         = fs.Int("k", 5, "recommended list length")
		l         = fs.Int("l", 10, "maximum number of groups")
		sem       = fs.String("semantics", "lm", "group semantics: lm or av")
		agg       = fs.String("agg", "min", "aggregation: max, min, sum, wsum-pos, wsum-log")
		algorithm = fs.String("algorithm", "grd", "grd, baseline, kmeans, exact or localsearch")
		densify   = fs.String("densify", "", "optional predictor to complete sparse ratings: knn, itemknn or mf")
		seed      = fs.Int64("seed", 1, "seed for randomized algorithms")
		workers   = fs.Int("workers", 0, "formation worker count (0 or 1 = serial, -1 = all CPUs); forms the same groups for every value on standard rating scales")
		verbose   = fs.Bool("v", false, "print members of every group")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		fs.Usage()
		return fmt.Errorf("-input is required")
	}

	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()

	var ds *groupform.Dataset
	switch strings.ToLower(*format) {
	case "csv":
		ds, err = groupform.LoadCSV(f, groupform.DefaultScale)
	case "movielens":
		ds, err = groupform.LoadMovieLens(f, groupform.DefaultScale)
	case "binary":
		ds, err = groupform.ReadBinary(f)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded %s\n", ds.Describe())

	if *densify != "" {
		var p groupform.Predictor
		switch strings.ToLower(*densify) {
		case "knn":
			p, err = groupform.NewUserKNN(ds, 20)
		case "itemknn":
			p, err = groupform.NewItemKNN(ds, 20)
		case "mf":
			p, err = groupform.NewMF(ds, groupform.MFConfig{Seed: *seed})
		default:
			return fmt.Errorf("unknown predictor %q", *densify)
		}
		if err != nil {
			return err
		}
		if ds, err = groupform.Densify(ds, p); err != nil {
			return err
		}
		fmt.Fprintf(out, "densified to %s\n", ds.Describe())
	}

	cfg := groupform.Config{K: *k, L: *l, Workers: *workers}
	switch strings.ToLower(*sem) {
	case "lm":
		cfg.Semantics = groupform.LM
	case "av":
		cfg.Semantics = groupform.AV
	default:
		return fmt.Errorf("unknown semantics %q", *sem)
	}
	switch strings.ToLower(*agg) {
	case "max":
		cfg.Aggregation = groupform.Max
	case "min":
		cfg.Aggregation = groupform.Min
	case "sum":
		cfg.Aggregation = groupform.Sum
	case "wsum-pos":
		cfg.Aggregation = groupform.WeightedSumPos
	case "wsum-log":
		cfg.Aggregation = groupform.WeightedSumLog
	default:
		return fmt.Errorf("unknown aggregation %q", *agg)
	}

	var res *groupform.Result
	switch strings.ToLower(*algorithm) {
	case "grd":
		res, err = groupform.Form(ds, cfg)
	case "baseline":
		res, err = groupform.FormBaseline(ds, groupform.BaselineConfig{
			Config: cfg, Method: groupform.KendallMedoids, Seed: *seed,
		})
	case "kmeans":
		res, err = groupform.FormBaseline(ds, groupform.BaselineConfig{
			Config: cfg, Method: groupform.VectorKMeans, Seed: *seed,
		})
	case "exact":
		res, err = groupform.FormExact(ds, cfg)
	case "localsearch":
		res, err = groupform.FormLocalSearch(ds, cfg, groupform.LSOptions{Anneal: true, Seed: *seed, Workers: *workers})
	default:
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "algorithm=%s objective=%.3f groups=%d\n", res.Algorithm, res.Objective, len(res.Groups))
	for i, g := range res.Groups {
		fmt.Fprintf(out, "group %d: size=%d satisfaction=%.3f items=%v\n", i+1, g.Size(), g.Satisfaction, g.Items)
		if *verbose {
			fmt.Fprintf(out, "  members=%v\n  scores=%v\n", g.Members, g.ItemScores)
		}
	}
	if fp, err := groupform.GroupSizeSummary(res); err == nil {
		fmt.Fprintf(out, "group sizes: %s\n", fp)
	}
	return nil
}
